#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/ffc.hpp"
#include "butterfly/butterfly.hpp"
#include "butterfly/lift.hpp"
#include "debruijn/cycle.hpp"
#include "debruijn/debruijn.hpp"
#include "service/cache.hpp"
#include "service/engine.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace dbr::service {
namespace {

std::shared_ptr<const EmbedResult> make_result(std::uint64_t tag) {
  auto r = std::make_shared<EmbedResult>();
  r->ring_length = tag;
  return r;
}

EmbedRequest node_request(Digit d, unsigned n, std::vector<Word> faults,
                          Strategy strategy = Strategy::kAuto) {
  EmbedRequest req;
  req.base = d;
  req.n = n;
  req.fault_kind = FaultKind::kNode;
  req.faults = std::move(faults);
  req.strategy = strategy;
  return req;
}

EmbedRequest edge_request(Digit d, unsigned n, std::vector<Word> faults,
                          Strategy strategy = Strategy::kAuto) {
  EmbedRequest req;
  req.base = d;
  req.n = n;
  req.fault_kind = FaultKind::kEdge;
  req.faults = std::move(faults);
  req.strategy = strategy;
  return req;
}

// --------------------------------------------------------------------------
// Fault-set canonicalization.

TEST(CanonicalKeyTest, FaultOrderAndRepeatsDoNotMatter) {
  const CacheKey a = canonical_key(node_request(3, 4, {7, 3, 11}));
  const CacheKey b = canonical_key(node_request(3, 4, {11, 7, 3}));
  const CacheKey c = canonical_key(node_request(3, 4, {3, 3, 11, 7, 7}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(CacheKeyHash()(a), CacheKeyHash()(b));
  EXPECT_EQ(a.faults, (std::vector<Word>{3, 7, 11}));
}

TEST(CanonicalKeyTest, DistinctInstancesGetDistinctKeys) {
  const CacheKey base = canonical_key(node_request(3, 4, {7, 3}));
  EXPECT_NE(base, canonical_key(node_request(3, 4, {7, 4})));
  EXPECT_NE(base, canonical_key(node_request(3, 5, {7, 3})));
  EXPECT_NE(base, canonical_key(node_request(2, 4, {7, 3})));
  EXPECT_NE(base, canonical_key(edge_request(3, 4, {7, 3})));
}

TEST(CanonicalKeyTest, AutoResolvesByFaultKind) {
  EXPECT_EQ(canonical_key(node_request(3, 4, {1})).strategy, Strategy::kFfc);
  EXPECT_EQ(canonical_key(edge_request(3, 4, {1})).strategy, Strategy::kEdgeAuto);
  // An explicit strategy and the kAuto that resolves to it share a key.
  EXPECT_EQ(canonical_key(node_request(3, 4, {1})),
            canonical_key(node_request(3, 4, {1}, Strategy::kFfc)));
}

// --------------------------------------------------------------------------
// Sharded LRU cache.

TEST(ShardedLruCacheTest, HitMissAndStats) {
  ShardedLruCache cache(/*capacity=*/8, /*shard_count=*/4);
  const CacheKey key = canonical_key(node_request(2, 5, {1, 2}));
  EXPECT_EQ(cache.get(key), nullptr);
  const auto value = make_result(42);
  cache.put(key, value);
  EXPECT_EQ(cache.get(key), value);
  EXPECT_EQ(cache.size(), 1u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard makes the LRU order deterministic.
  ShardedLruCache cache(/*capacity=*/2, /*shard_count=*/1);
  const CacheKey a = canonical_key(node_request(2, 5, {1}));
  const CacheKey b = canonical_key(node_request(2, 5, {2}));
  const CacheKey c = canonical_key(node_request(2, 5, {3}));
  cache.put(a, make_result(1));
  cache.put(b, make_result(2));
  ASSERT_NE(cache.get(a), nullptr);  // refresh a; b becomes LRU
  cache.put(c, make_result(3));      // evicts b
  EXPECT_EQ(cache.get(b), nullptr);
  EXPECT_NE(cache.get(a), nullptr);
  EXPECT_NE(cache.get(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCacheTest, CapacitySplitsAcrossShards) {
  ShardedLruCache cache(/*capacity=*/64, /*shard_count=*/8);
  EXPECT_EQ(cache.shard_count(), 8u);
  for (Word f = 0; f < 32; ++f)
    cache.put(canonical_key(node_request(2, 6, {f})), make_result(f));
  EXPECT_LE(cache.size(), 64u);
  EXPECT_GT(cache.size(), 0u);
}

// --------------------------------------------------------------------------
// Engine: caching behavior.

TEST(EmbedEngineTest, SecondQueryIsACacheHitWithTheSameResultObject) {
  EmbedEngine engine;
  const EmbedRequest req = node_request(3, 3, {5, 14});
  const EmbedResponse first = engine.query(req);
  const EmbedResponse second = engine.query(req);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.result, second.result);  // shared, not recomputed
  EXPECT_EQ(engine.cache_stats().hits, 1u);
}

TEST(EmbedEngineTest, PermutedFaultSetHitsTheSameEntry) {
  EmbedEngine engine;
  const EmbedResponse first = engine.query(node_request(3, 3, {5, 14, 9}));
  const EmbedResponse second = engine.query(node_request(3, 3, {9, 5, 14, 5}));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.result, second.result);
}

TEST(EmbedEngineTest, CachedResponseIsBitIdenticalToUncached) {
  const std::vector<EmbedRequest> scenarios = {
      node_request(3, 3, {5, 14}),
      node_request(2, 7, {3}),
      edge_request(4, 4, {17, 200}),
      edge_request(3, 5, {7}, Strategy::kEdgeScan),
      edge_request(3, 5, {7}, Strategy::kEdgePhi),
      edge_request(3, 4, {25}, Strategy::kButterfly),
  };
  for (const EmbedRequest& req : scenarios) {
    EmbedEngine engine;
    engine.query(req);                                // populate
    const EmbedResponse cached = engine.query(req);   // served from cache
    ASSERT_TRUE(cached.cache_hit);
    EmbedEngine cold(EngineOptions{.enable_cache = false});
    const auto baseline = cold.compute_uncached(req);
    EXPECT_TRUE(cached.result->same_embedding(*baseline))
        << "strategy " << to_string(req.strategy);
  }
}

TEST(EmbedEngineTest, DisabledCacheNeverHits) {
  EmbedEngine engine(EngineOptions{.enable_cache = false});
  const EmbedRequest req = node_request(3, 3, {5});
  EXPECT_FALSE(engine.query(req).cache_hit);
  EXPECT_FALSE(engine.query(req).cache_hit);
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(EmbedEngineTest, EvictionForcesRecompute) {
  EngineOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  EmbedEngine engine(options);
  const EmbedRequest a = node_request(3, 3, {1});
  const EmbedRequest b = node_request(3, 3, {2});
  const EmbedRequest c = node_request(3, 3, {4});
  engine.query(a);
  engine.query(b);
  engine.query(c);                            // evicts a
  EXPECT_FALSE(engine.query(a).cache_hit);    // recomputed
  EXPECT_GE(engine.cache_stats().evictions, 1u);
}

// --------------------------------------------------------------------------
// Engine: strategy dispatch.

TEST(EmbedEngineTest, NodeFaultsDispatchToFfc) {
  EmbedEngine engine;
  const WordSpace ws(3, 3);
  const std::vector<Word> faults = {ws.from_digits(std::vector<Digit>{0, 2, 0}),
                                    ws.from_digits(std::vector<Digit>{1, 1, 2})};
  const EmbedResponse resp = engine.query(node_request(3, 3, faults));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.result->strategy_used, Strategy::kFfc);
  // Example 2.1: B* has 21 nodes and the ring is exactly the FFC cycle.
  EXPECT_EQ(resp.result->ring_length, 21u);
  const core::FfcSolver solver{DeBruijnDigraph(3, 3)};
  EXPECT_EQ(resp.result->ring, solver.solve(faults).cycle);
  EXPECT_TRUE(is_cycle(ws, resp.result->ring));
  // Bounds: f = 2 > d - 2 = 1, so the guarantee degrades to [0, 25].
  EXPECT_EQ(resp.result->lower_bound, 0u);
  EXPECT_EQ(resp.result->upper_bound, 25u);
  EXPECT_GE(resp.result->ring_length, resp.result->lower_bound);
  EXPECT_LE(resp.result->ring_length, resp.result->upper_bound);
}

TEST(EmbedEngineTest, SingleNodeFaultBinaryBoundsMatchProposition23) {
  EmbedEngine engine;
  const EmbedResponse resp = engine.query(node_request(2, 7, {5}));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.result->lower_bound, 128u - 8u);  // 2^n - (n+1)
  EXPECT_EQ(resp.result->upper_bound, 127u);
  EXPECT_GE(resp.result->ring_length, resp.result->lower_bound);
  EXPECT_LE(resp.result->ring_length, resp.result->upper_bound);
}

TEST(EmbedEngineTest, EdgeFaultsProduceAFaultAvoidingHamiltonianCycle) {
  EmbedEngine engine;
  const std::vector<Word> faults = {17, 200, 301};
  const EmbedResponse resp = engine.query(edge_request(4, 4, faults));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.result->strategy_used, Strategy::kEdgeAuto);
  const WordSpace ws(4, 4);
  EXPECT_TRUE(is_hamiltonian(ws, resp.result->ring));
  const std::vector<Word> used = edge_words(ws, resp.result->ring);
  for (Word f : faults)
    EXPECT_EQ(std::count(used.begin(), used.end(), f), 0) << "uses fault " << f;
  EXPECT_EQ(resp.result->lower_bound, ws.size());
  EXPECT_EQ(resp.result->upper_bound, ws.size());
}

TEST(EmbedEngineTest, ExplicitScanAndPhiStrategiesBothEmbed) {
  // psi(3) = 1: the scan family has one cycle, so the fault must avoid it.
  // Find a non-loop edge word outside the clean scan cycle; both strategies
  // must then survive it (phi(3) = 1 covers any single fault).
  const WordSpace ws(3, 5);
  EmbedEngine probe;
  const EmbedResponse clean = probe.query(edge_request(3, 5, {}, Strategy::kEdgeScan));
  ASSERT_TRUE(clean.ok());
  const std::vector<Word> clean_edges = edge_words(ws, clean.result->ring);
  Word fault = 0;
  const WordSpace edge_ws(3, 6);
  for (Word e = 0; e < ws.edge_word_count(); ++e) {
    const bool loop = edge_ws.period(e) == 1;
    if (!loop && std::count(clean_edges.begin(), clean_edges.end(), e) == 0) {
      fault = e;
      break;
    }
  }
  for (const Strategy strategy : {Strategy::kEdgeScan, Strategy::kEdgePhi}) {
    EmbedEngine engine;
    const EmbedResponse resp = engine.query(edge_request(3, 5, {fault}, strategy));
    ASSERT_TRUE(resp.ok()) << to_string(strategy);
    EXPECT_EQ(resp.result->strategy_used, strategy);
    EXPECT_TRUE(is_hamiltonian(ws, resp.result->ring));
    const std::vector<Word> used = edge_words(ws, resp.result->ring);
    EXPECT_EQ(std::count(used.begin(), used.end(), fault), 0);
  }
}

TEST(EmbedEngineTest, ButterflyStrategyLiftsToAButterflyHamiltonianCycle) {
  EmbedEngine engine;
  const EmbedResponse resp =
      engine.query(edge_request(3, 4, {25}, Strategy::kButterfly));
  ASSERT_TRUE(resp.ok());
  const ButterflyDigraph bf(3, 4);
  EXPECT_EQ(resp.result->ring_length, 4u * 81u);  // n * d^n = |F(3,4)|
  EXPECT_TRUE(butterfly::is_butterfly_cycle(bf, resp.result->ring.nodes));
}

TEST(EmbedEngineTest, ScanBeyondItsGuaranteeReportsNoEmbedding) {
  // psi(2) = 1: the scan family for B(2,n) has a single Hamiltonian cycle,
  // so a fault on one of its edges exhausts the scan.
  EmbedEngine engine;
  const EmbedResponse clean =
      engine.query(edge_request(2, 4, {}, Strategy::kEdgeScan));
  ASSERT_TRUE(clean.ok());
  const WordSpace ws(2, 4);
  const Word blocking = edge_words(ws, clean.result->ring).front();
  const EmbedResponse resp =
      engine.query(edge_request(2, 4, {blocking}, Strategy::kEdgeScan));
  EXPECT_EQ(resp.result->status, EmbedStatus::kNoEmbedding);
  EXPECT_TRUE(resp.result->ring.nodes.empty());
  EXPECT_FALSE(resp.result->error.empty());
}

TEST(EmbedEngineTest, InvalidRequestsReportBadRequest) {
  EmbedEngine engine;
  // Strategy/fault-kind mismatches.
  EXPECT_EQ(engine.query(edge_request(3, 3, {1}, Strategy::kFfc)).result->status,
            EmbedStatus::kBadRequest);
  EXPECT_EQ(engine.query(node_request(3, 3, {1}, Strategy::kEdgeScan)).result->status,
            EmbedStatus::kBadRequest);
  // Butterfly lift needs gcd(d, n) = 1.
  EXPECT_EQ(engine.query(edge_request(2, 4, {1}, Strategy::kButterfly)).result->status,
            EmbedStatus::kBadRequest);
  // Fault word out of range.
  EXPECT_EQ(engine.query(node_request(2, 3, {8})).result->status,
            EmbedStatus::kBadRequest);
  // Bad requests are not cached.
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

// --------------------------------------------------------------------------
// Engine: fail-fast precondition rejections. Each documented precondition
// must yield kBadRequest with a message naming it, never a computation.

TEST(EmbedEngineTest, ButterflyGcdPreconditionNamesGcd) {
  EmbedEngine engine;
  for (const auto& [d, n] : {std::pair<Digit, unsigned>{2, 4}, {3, 6}, {4, 4}}) {
    const EmbedResponse resp =
        engine.query(edge_request(d, n, {1}, Strategy::kButterfly));
    ASSERT_EQ(resp.result->status, EmbedStatus::kBadRequest)
        << "d=" << d << " n=" << n;
    EXPECT_NE(resp.result->error.find("gcd(d, n) = 1"), std::string::npos)
        << resp.result->error;
    EXPECT_TRUE(resp.result->ring.nodes.empty());
  }
}

TEST(EmbedEngineTest, EdgeFaultRequestsRequireNAtLeastTwo) {
  EmbedEngine engine;
  for (const Strategy strategy :
       {Strategy::kAuto, Strategy::kEdgeAuto, Strategy::kEdgeScan,
        Strategy::kEdgePhi, Strategy::kButterfly}) {
    // gcd(3, 1) = 1, so for kButterfly it is specifically the n >= 2
    // precondition that must fire.
    const EmbedResponse resp = engine.query(edge_request(3, 1, {2}, strategy));
    ASSERT_EQ(resp.result->status, EmbedStatus::kBadRequest)
        << to_string(strategy);
    EXPECT_NE(resp.result->error.find("n >= 2"), std::string::npos)
        << to_string(strategy) << ": " << resp.result->error;
  }
  // Node faults have no such restriction at the engine layer.
  EXPECT_NE(engine.query(node_request(3, 3, {1})).result->status,
            EmbedStatus::kBadRequest);
}

TEST(EmbedEngineTest, FaultWordRangeRejectionNamesTheWord) {
  EmbedEngine engine;
  // Node words of B(2,3) live in [0, 8); edge words in [0, 16).
  const EmbedResponse node_resp = engine.query(node_request(2, 3, {3, 8}));
  ASSERT_EQ(node_resp.result->status, EmbedStatus::kBadRequest);
  EXPECT_NE(node_resp.result->error.find("fault word 8 out of range"),
            std::string::npos)
      << node_resp.result->error;

  const EmbedResponse edge_resp = engine.query(edge_request(2, 3, {16}));
  ASSERT_EQ(edge_resp.result->status, EmbedStatus::kBadRequest);
  EXPECT_NE(edge_resp.result->error.find("fault word 16 out of range"),
            std::string::npos)
      << edge_resp.result->error;
  // The largest in-range edge word is accepted.
  EXPECT_NE(engine.query(edge_request(2, 3, {15})).result->status,
            EmbedStatus::kBadRequest);
}

// --------------------------------------------------------------------------
// Engine: kAuto dispatch routes by fault kind and matches the explicit
// strategies bit for bit.

TEST(EmbedEngineTest, AutoDispatchMatchesExplicitStrategies) {
  EmbedEngine engine;
  const std::vector<Word> node_faults = {7, 33};
  const EmbedResponse auto_node = engine.query(node_request(3, 4, node_faults));
  ASSERT_TRUE(auto_node.ok());
  EXPECT_EQ(auto_node.result->strategy_used, Strategy::kFfc);
  EmbedEngine explicit_node_engine;
  const EmbedResponse explicit_node = explicit_node_engine.query(
      node_request(3, 4, node_faults, Strategy::kFfc));
  EXPECT_EQ(explicit_node.result->strategy_used, Strategy::kFfc);
  EXPECT_TRUE(auto_node.result->same_embedding(*explicit_node.result));

  const std::vector<Word> edge_faults = {25, 100};
  const EmbedResponse auto_edge = engine.query(edge_request(3, 4, edge_faults));
  ASSERT_TRUE(auto_edge.ok());
  EXPECT_EQ(auto_edge.result->strategy_used, Strategy::kEdgeAuto);
  EmbedEngine explicit_edge_engine;
  const EmbedResponse explicit_edge = explicit_edge_engine.query(
      edge_request(3, 4, edge_faults, Strategy::kEdgeAuto));
  EXPECT_EQ(explicit_edge.result->strategy_used, Strategy::kEdgeAuto);
  EXPECT_TRUE(auto_edge.result->same_embedding(*explicit_edge.result));

  // kAuto and its resolution share one cache entry.
  EXPECT_TRUE(engine.query(node_request(3, 4, node_faults, Strategy::kFfc)).cache_hit);
  EXPECT_TRUE(engine.query(edge_request(3, 4, edge_faults, Strategy::kEdgeAuto)).cache_hit);
}

// --------------------------------------------------------------------------
// Engine: fault-set canonicalization, one test per FaultKind.

TEST(EmbedEngineTest, NodeFaultCanonicalizationCollapsesPresentations) {
  EmbedEngine engine;
  const EmbedResponse first = engine.query(node_request(3, 4, {7, 33, 12}));
  const EmbedResponse permuted = engine.query(node_request(3, 4, {12, 7, 33}));
  const EmbedResponse duplicated =
      engine.query(node_request(3, 4, {33, 33, 12, 7, 7, 12}));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(permuted.cache_hit);
  EXPECT_TRUE(duplicated.cache_hit);
  EXPECT_TRUE(first.result->same_embedding(*permuted.result));
  EXPECT_TRUE(first.result->same_embedding(*duplicated.result));
}

TEST(EmbedEngineTest, EdgeFaultCanonicalizationCollapsesPresentations) {
  EmbedEngine engine;
  const EmbedResponse first = engine.query(edge_request(3, 4, {25, 100, 7}));
  const EmbedResponse permuted = engine.query(edge_request(3, 4, {100, 7, 25}));
  const EmbedResponse duplicated =
      engine.query(edge_request(3, 4, {7, 25, 25, 100, 7}));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(permuted.cache_hit);
  EXPECT_TRUE(duplicated.cache_hit);
  EXPECT_TRUE(first.result->same_embedding(*permuted.result));
  EXPECT_TRUE(first.result->same_embedding(*duplicated.result));
}

// --------------------------------------------------------------------------
// Engine: validate_responses debug mode.

TEST(EmbedEngineTest, ValidateResponsesChecksMissesAndSkipsHits) {
  EngineOptions options;
  options.validate_responses = true;
  EmbedEngine engine(options);
  const EmbedRequest requests[] = {
      node_request(3, 3, {5, 14}),
      edge_request(4, 4, {17}),
      edge_request(3, 4, {25}, Strategy::kButterfly),
  };
  for (const EmbedRequest& req : requests) {
    const EmbedResponse resp = engine.query(req);
    EXPECT_TRUE(resp.ok()) << resp.result->error;
  }
  EXPECT_EQ(engine.validation_stats().checked, 3u);
  EXPECT_EQ(engine.validation_stats().violations, 0u);
  // Hits return the already-validated object without re-running the oracle.
  EXPECT_TRUE(engine.query(requests[0]).cache_hit);
  EXPECT_EQ(engine.validation_stats().checked, 3u);
}

// --------------------------------------------------------------------------
// Engine: concurrent batches.

TEST(EmbedEngineTest, ConcurrentBatchMatchesSequentialBaseline) {
  Rng rng(2026);
  std::vector<EmbedRequest> batch;
  for (int i = 0; i < 72; ++i) {
    switch (rng.below(3)) {
      case 0:
        batch.push_back(node_request(3, 4, {rng.below(81), rng.below(81)}));
        break;
      case 1:
        batch.push_back(edge_request(3, 4, {rng.below(243)}));
        break;
      default:
        batch.push_back(edge_request(3, 4, {rng.below(243)}, Strategy::kButterfly));
        break;
    }
  }

  EmbedEngine concurrent;
  BatchStats stats;
  const std::vector<EmbedResponse> responses = concurrent.query_batch(batch, &stats);
  ASSERT_EQ(responses.size(), batch.size());

  EmbedEngine sequential(EngineOptions{.enable_cache = false});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto baseline = sequential.compute_uncached(batch[i]);
    EXPECT_TRUE(responses[i].result->same_embedding(*baseline)) << "request " << i;
  }

  EXPECT_EQ(stats.processed(), batch.size());
  EXPECT_EQ(stats.merged_latency().count(), batch.size());
  EXPECT_EQ(stats.cache_hits(), concurrent.cache_stats().hits);
  EXPECT_GT(stats.wall_micros, 0.0);
  EXPECT_GT(stats.throughput_qps(), 0.0);
  std::uint64_t worker_hits = 0;
  for (const WorkerStats& w : stats.workers) worker_hits += w.cache_hits;
  EXPECT_EQ(worker_hits, stats.cache_hits());
}

TEST(EmbedEngineTest, RepeatHeavyBatchMostlyHitsTheCache) {
  const EmbedRequest hot = node_request(3, 4, {11, 57});
  std::vector<EmbedRequest> batch(200, hot);
  EmbedEngine engine;
  BatchStats stats;
  const std::vector<EmbedResponse> responses = engine.query_batch(batch, &stats);
  // Every worker computes the hot key at most once (racing first misses are
  // allowed), so hits dominate.
  EXPECT_GE(stats.cache_hits(), batch.size() - worker_count());
  for (const EmbedResponse& r : responses)
    EXPECT_TRUE(r.result->same_embedding(*responses.front().result));
}

// --------------------------------------------------------------------------
// Cache policy: deterministic answers (kOk, kNoEmbedding) are cacheable;
// kBadRequest / kInternalError never are; clear_cache() resets the stats
// counters along with the entries.

TEST(EmbedEngineTest, NoEmbeddingAnswersAreCached) {
  // psi(2) = 1: blocking the single scan cycle gives a deterministic
  // kNoEmbedding, which must be served from cache on repeat.
  EmbedEngine engine;
  const EmbedResponse clean =
      engine.query(edge_request(2, 4, {}, Strategy::kEdgeScan));
  ASSERT_TRUE(clean.ok());
  const Word blocking = edge_words(WordSpace(2, 4), clean.result->ring).front();
  const EmbedRequest req = edge_request(2, 4, {blocking}, Strategy::kEdgeScan);
  const EmbedResponse first = engine.query(req);
  ASSERT_EQ(first.result->status, EmbedStatus::kNoEmbedding);
  EXPECT_FALSE(first.cache_hit);
  const EmbedResponse second = engine.query(req);
  EXPECT_EQ(second.result->status, EmbedStatus::kNoEmbedding);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.get(), first.result.get());  // exact object
}

TEST(EmbedEngineTest, ErrorAnswersAreNeverCached) {
  // kBadRequest goes through the same cacheability gate as kInternalError
  // (only kOk and kNoEmbedding pass): repeats recompute every time.
  EmbedEngine engine;
  const EmbedRequest bad = node_request(2, 3, {99});  // out of range
  const EmbedResponse first = engine.query(bad);
  ASSERT_EQ(first.result->status, EmbedStatus::kBadRequest);
  const EmbedResponse second = engine.query(bad);
  EXPECT_EQ(second.result->status, EmbedStatus::kBadRequest);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_NE(first.result.get(), second.result.get());
  EXPECT_EQ(engine.cache_stats().entries, 0u);
}

TEST(EmbedEngineTest, ClearCacheResetsEntriesAndStatsCounters) {
  EmbedEngine engine;
  const EmbedRequest req = node_request(2, 6, {3});
  engine.query(req);
  engine.query(req);
  CacheStats before = engine.cache_stats();
  EXPECT_EQ(before.hits, 1u);
  EXPECT_EQ(before.misses, 1u);
  EXPECT_EQ(before.entries, 1u);

  engine.clear_cache();
  const CacheStats after = engine.cache_stats();
  EXPECT_EQ(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
  EXPECT_EQ(after.evictions, 0u);
  EXPECT_EQ(after.entries, 0u);
  // The post-clear window attributes stats to post-clear traffic only.
  EXPECT_FALSE(engine.query(req).cache_hit);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
}

// --------------------------------------------------------------------------
// Context reuse: the second cache layer, with its own attribution counters.

TEST(EmbedEngineTest, DistinctFaultSetsOnOneInstanceReuseTheContext) {
  EmbedEngine engine;
  const EmbedResponse first = engine.query(node_request(2, 6, {1}));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.context_cache_hit);  // built on first touch
  const EmbedResponse second = engine.query(node_request(2, 6, {2}));
  EXPECT_FALSE(second.cache_hit);  // distinct fault set: result-cache miss
  EXPECT_TRUE(second.context_cache_hit);

  const ServeStats stats = engine.serve_stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.result_hits, 0u);
  EXPECT_EQ(stats.context_hits, 1u);
  EXPECT_EQ(stats.context_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.context_reuse_rate(), 0.5);
  EXPECT_EQ(engine.context_cache_stats().entries, 1u);
}

TEST(EmbedEngineTest, ResultCacheHitsDoNotTouchTheContextCache) {
  EmbedEngine engine;
  const EmbedRequest req = node_request(2, 6, {1});
  engine.query(req);
  const auto contexts_before = engine.context_cache_stats();
  const EmbedResponse repeat = engine.query(req);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_FALSE(repeat.context_cache_hit);
  const auto contexts_after = engine.context_cache_stats();
  EXPECT_EQ(contexts_after.hits, contexts_before.hits);
  EXPECT_EQ(contexts_after.misses, contexts_before.misses);
  EXPECT_EQ(engine.serve_stats().result_hits, 1u);
}

TEST(EmbedEngineTest, ContextReuseIsBitIdenticalToColdRebuilds) {
  EngineOptions cold_options;
  cold_options.reuse_contexts = false;
  cold_options.enable_cache = false;
  EmbedEngine cold(cold_options);
  EngineOptions warm_options;
  warm_options.enable_cache = false;
  EmbedEngine warm(warm_options);

  Rng rng(5);
  for (std::uint64_t variant = 0; variant < 24; ++variant) {
    // A mix of every strategy over shared instances, fresh fault sets.
    std::vector<EmbedRequest> batch;
    batch.push_back(node_request(2, 6, {rng.below(64)}));
    batch.push_back(node_request(2, 6, {rng.below(64)}, Strategy::kFfc));
    batch.push_back(edge_request(3, 4, {rng.below(243)}, Strategy::kEdgeScan));
    batch.push_back(edge_request(3, 4, {rng.below(243)}, Strategy::kEdgePhi));
    batch.push_back(edge_request(3, 4, {rng.below(243)}, Strategy::kButterfly));
    for (const EmbedRequest& req : batch) {
      const EmbedResponse a = cold.query(req);
      const EmbedResponse b = warm.query(req);
      ASSERT_TRUE(a.result && b.result);
      EXPECT_TRUE(a.result->same_embedding(*b.result));
      EXPECT_FALSE(a.context_cache_hit);  // cold engine never reuses
    }
  }
  EXPECT_EQ(cold.serve_stats().context_hits, 0u);
  EXPECT_GT(warm.serve_stats().context_hits, 0u);
}

TEST(EmbedEngineTest, BatchStatsSeparateResultAndContextHits) {
  EmbedEngine engine;
  std::vector<EmbedRequest> batch;
  for (Word v = 0; v < 16; ++v) {
    batch.push_back(node_request(2, 6, {v % 8}));  // 8 unique, 8 repeats
  }
  BatchStats stats;
  engine.query_batch(batch, &stats);
  // Every query either hit the result cache or computed; computed queries
  // beyond the very first context build reused the context.
  EXPECT_EQ(stats.processed(), batch.size());
  const std::uint64_t computed = stats.processed() - stats.cache_hits();
  EXPECT_GE(stats.context_hits(), computed - 1);
  EXPECT_LE(stats.context_hits(), computed);
}

// --------------------------------------------------------------------------
// Stats plumbing.

TEST(EmbedEngineTest, ClearCacheResetsServeStatsCoherently) {
  // Regression: clear_cache() used to reset CacheStats but keep the
  // engine-lifetime ServeStats counters, so a post-clear report could pair
  // stale result_hits with a fresh query count (a hit_rate above 1.0).
  EmbedEngine engine;
  const EmbedRequest req = node_request(2, 6, {3});
  engine.query(req);
  engine.query(req);
  engine.query(req);
  EXPECT_EQ(engine.serve_stats().result_hits, 2u);

  engine.clear_cache();
  const ServeStats after = engine.serve_stats();
  EXPECT_EQ(after.queries, 0u);
  EXPECT_EQ(after.result_hits, 0u);
  EXPECT_EQ(after.context_hits, 0u);
  EXPECT_EQ(after.context_misses, 0u);

  // One post-clear miss: both layers describe exactly the same window.
  engine.query(req);
  const ServeStats window = engine.serve_stats();
  EXPECT_EQ(window.queries, 1u);
  EXPECT_EQ(window.result_hits, 0u);
  EXPECT_LE(window.result_hit_rate(), 1.0);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  // Contexts survive a result-cache clear (documented behavior).
  EXPECT_EQ(engine.context_cache_stats().entries, 1u);
}

TEST(BatchStatsTest, QuarantinedResponsesAreCountedButNotTimed) {
  // Regression: a validate_responses quarantine (kInternalError veto) used
  // to be recorded into the worker's latency samples, skewing the p50/p99
  // aggregation of bench/verify_overhead.cpp. Quarantined responses are
  // now a separate counter and never enter the recorder.
  BatchStats stats;
  WorkerStats clean;
  clean.processed = 3;
  clean.latency.record(10.0);
  clean.latency.record(20.0);
  clean.latency.record(30.0);
  WorkerStats vetoed;
  vetoed.processed = 2;
  vetoed.quarantined = 2;  // both answers quarantined: nothing timed
  stats.workers = {clean, vetoed};

  EXPECT_EQ(stats.processed(), 5u);
  EXPECT_EQ(stats.quarantined(), 2u);
  EXPECT_EQ(stats.merged_latency().count(), 3u);
  EXPECT_DOUBLE_EQ(stats.merged_latency().percentile(100), 30.0);
}

TEST(EmbedEngineTest, ValidatedBatchTimesEveryNonQuarantinedResponse) {
  EngineOptions options;
  options.validate_responses = true;
  EmbedEngine engine(options);
  std::vector<EmbedRequest> stream;
  for (Word f = 0; f < 8; ++f) stream.push_back(node_request(2, 6, {f}));
  BatchStats stats;
  const auto responses = engine.query_batch(stream, &stats);
  ASSERT_EQ(responses.size(), stream.size());
  for (const EmbedResponse& r : responses) {
    ASSERT_TRUE(r.result);
    EXPECT_FALSE(r.result->quarantined);
  }
  EXPECT_EQ(stats.quarantined(), 0u);
  // With no vetoes, the percentile base covers the whole batch.
  EXPECT_EQ(stats.merged_latency().count(), stream.size());
}

TEST(LatencyRecorderTest, PercentilesUseNearestRank) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rec.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(rec.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(rec.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(rec.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.mean(), 50.5);
  LatencyRecorder other;
  other.record(1000.0);
  other.merge(rec);
  EXPECT_EQ(other.count(), 101u);
  EXPECT_DOUBLE_EQ(other.percentile(100), 1000.0);
}

TEST(LatencyRecorderTest, SnapshotMatchesPerCallPercentiles) {
  // The sorted snapshot pays the sort once; every rank it reports must be
  // bit-identical to the per-call path, insertion order notwithstanding.
  Rng rng(7);
  LatencyRecorder rec;
  for (int i = 0; i < 997; ++i) {
    rec.record(static_cast<double>(rng.below(100000)) / 7.0);
  }
  const LatencySnapshot snap = rec.snapshot();
  EXPECT_EQ(snap.count(), rec.count());
  EXPECT_DOUBLE_EQ(snap.mean(), rec.mean());
  for (const double p :
       {0.0, 0.1, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(snap.percentile(p), rec.percentile(p)) << "p=" << p;
  }
  // Out-of-range ranks clamp identically on both paths.
  EXPECT_DOUBLE_EQ(snap.percentile(-5.0), rec.percentile(-5.0));
  EXPECT_DOUBLE_EQ(snap.percentile(400.0), rec.percentile(400.0));
  EXPECT_DOUBLE_EQ(LatencySnapshot({}).percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(LatencySnapshot({}).mean(), 0.0);
}

}  // namespace
}  // namespace dbr::service
