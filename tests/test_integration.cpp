// Cross-module integration tests: invariants that tie the FFC algorithm,
// the necklace census, the disjoint-cycle machinery, the simulator and the
// baselines together - the proof obligations of Sections 2.3 and 2.5
// checked on random instances rather than the single worked example.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/disjoint_hc.hpp"
#include "core/distributed_ffc.hpp"
#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "debruijn/cycle.hpp"
#include "debruijn/necklaces.hpp"
#include "graph/euler.hpp"
#include "hypercube/fault_free_cycle.hpp"
#include "necklace/count.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr {
namespace {

TEST(Lemma22, ProjectionOfHIsEulerianInD) {
  // For random fault sets: projecting H onto necklace-level moves uses
  // every edge of the modified tree D exactly once (Lemma 2.2's circuit J).
  Rng rng(0x1e22);
  for (auto [d, n] : {std::pair<Digit, unsigned>{3, 4}, {4, 3}, {5, 3}, {2, 8}}) {
    const core::FfcSolver solver{DeBruijnDigraph(d, n)};
    const WordSpace& ws = solver.graph().words();
    for (unsigned trial = 0; trial < 10; ++trial) {
      const auto faults = rng.sample_distinct(ws.size(), 1 + rng.below(4));
      const auto r = solver.solve(faults);
      std::multiset<std::pair<Word, Word>> used;
      for (std::size_t i = 0; i < r.cycle.length(); ++i) {
        const Word u = r.cycle.nodes[i];
        const Word v = r.cycle.nodes[(i + 1) % r.cycle.length()];
        if (ws.min_rotation(u) != ws.min_rotation(v)) {
          used.insert({ws.min_rotation(u), ws.min_rotation(v)});
        }
      }
      std::multiset<std::pair<Word, Word>> expected;
      for (const auto& e : r.modified_edges) expected.insert({e.from, e.to});
      EXPECT_EQ(used, expected);
    }
  }
}

TEST(Lemma21, IncomingOutgoingAlternation) {
  // Every node of B* lies on exactly one necklace path from an incoming to
  // the next outgoing node: along H, consecutive same-necklace nodes follow
  // the rotation, and each necklace is entered as often as it is exited.
  const core::FfcSolver solver{DeBruijnDigraph(3, 4)};
  const WordSpace& ws = solver.graph().words();
  Rng rng(0x1e21);
  const auto faults = rng.sample_distinct(ws.size(), 3);
  const auto r = solver.solve(faults);
  std::map<Word, int> entries, exits;
  for (std::size_t i = 0; i < r.cycle.length(); ++i) {
    const Word u = r.cycle.nodes[i];
    const Word v = r.cycle.nodes[(i + 1) % r.cycle.length()];
    if (ws.min_rotation(u) == ws.min_rotation(v)) {
      EXPECT_EQ(v, ws.rotate_left(u, 1)) << "intra-necklace moves are rotations";
    } else {
      ++exits[ws.min_rotation(u)];
      ++entries[ws.min_rotation(v)];
    }
  }
  EXPECT_EQ(entries, exits);
  for (const auto& [rep, count] : entries) {
    EXPECT_GE(count, 1) << ws.to_string(rep);
  }
}

TEST(TreeCensus, TreeEdgesCountNecklacesMinusOne) {
  // T spans the necklaces of B*: |T| = #necklaces - 1; and the necklace
  // count of the fault-free graph matches the Chapter 4 formula.
  const core::FfcSolver solver{DeBruijnDigraph(4, 4)};
  const WordSpace& ws = solver.graph().words();
  const auto nofault = solver.solve({});
  EXPECT_EQ(nofault.necklace_count, necklace::necklaces_total(4, 4));
  EXPECT_EQ(nofault.tree_edges.size(), nofault.necklace_count - 1);
  Rng rng(0x7ee);
  for (unsigned trial = 0; trial < 10; ++trial) {
    const auto faults = rng.sample_distinct(ws.size(), 1 + rng.below(5));
    const auto r = solver.solve(faults);
    EXPECT_EQ(r.tree_edges.size(), r.necklace_count - 1);
  }
}

TEST(Generators, FfcAndLfsrFamiliesAreBothDeBruijnSequences) {
  // Two completely independent Hamiltonian-cycle generators - the FFC
  // necklace stitch and the GF(q) maximal-cycle insertion - both produce
  // valid De Bruijn sequences for the same graphs.
  for (auto [d, n] : {std::pair<Digit, unsigned>{2, 6}, {3, 4}, {4, 3}, {5, 2}}) {
    const WordSpace ws(d, n);
    const core::FfcSolver solver{DeBruijnDigraph(d, n)};
    EXPECT_TRUE(is_hamiltonian(ws, solver.solve({}).cycle));
    const gf::Field field(d);
    const core::MaximalCycleFamily family(field, n);
    EXPECT_TRUE(is_hamiltonian(ws, family.hamiltonian_cycle_at(0, 1)));
  }
}

TEST(Generators, EulerLiftMatchesFfcLengths) {
  // Third generator: Euler circuits of B(d,n-1) lifted through the line
  // graph identity. All three agree on cycle length d^n.
  for (auto [d, n] : {std::pair<Digit, unsigned>{2, 5}, {3, 3}}) {
    const DeBruijnDigraph small(d, n - 1);
    const auto circuit = eulerian_circuit(small.materialize());
    EXPECT_EQ(circuit.size(), WordSpace(d, n).size());
    SymbolCycle seq;
    for (NodeId v : circuit) seq.symbols.push_back(small.words().head(v));
    EXPECT_TRUE(is_hamiltonian(WordSpace(d, n), seq));
  }
}

TEST(Distributed, RoundBudgetHoldsUnderFaults) {
  // Total rounds <= ecc(R) + 3n + 2 on random faulty networks, not just
  // fault-free ones.
  Rng rng(0xdf);
  for (auto [d, n] : {std::pair<Digit, unsigned>{2, 9}, {3, 5}, {4, 4}}) {
    const core::DistributedFfcSolver solver{DeBruijnDigraph(d, n)};
    for (unsigned trial = 0; trial < 8; ++trial) {
      const auto faults =
          rng.sample_distinct(solver.graph().num_nodes(), rng.below(6));
      Word root;
      try {
        root = solver.default_root(faults);
      } catch (const precondition_error&) {
        continue;
      }
      const auto r = solver.run(faults, root);
      EXPECT_LE(r.stats.total_rounds(),
                static_cast<std::uint64_t>(r.root_eccentricity) + 3 * n + 2);
    }
  }
}

TEST(CrossNetwork, GuaranteeComparisonAtMatchedSizes) {
  // The Chapter 2 comparison at another matched size: 256 nodes = B(4,4) vs
  // Q_8. Constructive check of both guarantees with two faults.
  const core::FfcSolver debruijn{DeBruijnDigraph(4, 4)};
  Rng rng(0xc0);
  for (unsigned trial = 0; trial < 5; ++trial) {
    const auto dbf = rng.sample_distinct(256, 2);
    EXPECT_GE(debruijn.solve(dbf).cycle.length(), 256u - 4 * 2);
    const auto qf = rng.sample_distinct(256, 2);
    EXPECT_GE(hypercube::fault_free_cycle(8, qf).size(), 256u - 2 * 2);
  }
}

TEST(NodePlusEdgeFaults, RingSurvivesMixedFailures) {
  // Composition scenario: first edge failures are survived by switching to
  // a disjoint ring (Chapter 3), then a node failure on that ring is
  // handled by re-embedding with the FFC (Chapter 2). The library supports
  // the full sequence.
  const std::uint64_t d = 4;
  const unsigned n = 3;
  const WordSpace ws(4, 3);
  Rng rng(0xabc);
  // Two dead links.
  std::vector<Word> dead_links;
  while (dead_links.size() < 2) {
    const Word e = rng.below(ws.edge_word_count());
    const auto [u, v] = ws.edge_endpoints(e);
    if (u != v) dead_links.push_back(e);
  }
  const auto ring = core::fault_free_hamiltonian_cycle(d, n, dead_links);
  ASSERT_TRUE(ring.has_value());
  EXPECT_TRUE(avoids_edges(ws, *ring, dead_links));
  // Now a processor on that ring dies; fall back to the FFC ring.
  const Word dead_node = to_node_cycle(ws, *ring).nodes[7];
  const core::FfcSolver solver{DeBruijnDigraph(4, 3)};
  const auto recovered = solver.solve(std::vector<Word>{dead_node});
  EXPECT_GE(recovered.cycle.length(), ws.size() - n);
  EXPECT_TRUE(is_cycle(ws, recovered.cycle));
}

}  // namespace
}  // namespace dbr
