#include <gtest/gtest.h>

#include <set>

#include "butterfly/butterfly.hpp"
#include "butterfly/lift.hpp"
#include "core/butterfly_embedding.hpp"
#include "core/disjoint_hc.hpp"
#include "debruijn/debruijn.hpp"
#include "graph/algorithms.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr {
namespace {

using core::psi;

TEST(Butterfly, StructureF23) {
  // Figure 3.4: F(2,3) has 3 * 8 = 24 nodes, each with out-degree 2.
  const ButterflyDigraph bf(2, 3);
  EXPECT_EQ(bf.num_nodes(), 24u);
  EXPECT_EQ(bf.num_edges(), 48u);
  const Digraph m = bf.materialize();
  for (auto deg : m.out_degrees()) EXPECT_EQ(deg, 2u);
  for (auto deg : m.in_degrees()) EXPECT_EQ(deg, 2u);
}

TEST(Butterfly, EdgesChangeOnlyTheLevelDigit) {
  const ButterflyDigraph bf(3, 4);
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId v = rng.below(bf.num_nodes());
    const unsigned k = bf.level_of(v);
    bf.for_each_successor(v, [&](NodeId w) {
      EXPECT_TRUE(bf.has_edge(v, w));
      EXPECT_EQ(bf.level_of(w), (k + 1) % 4);
      // Columns agree off digit k.
      const auto& ws = bf.columns();
      for (unsigned i = 0; i < 4; ++i) {
        if (i != k) {
          EXPECT_EQ(ws.digit(bf.column_of(v), i), ws.digit(bf.column_of(w), i));
        }
      }
    });
  }
}

TEST(Butterfly, EncodeDecodeRoundTrip) {
  const ButterflyDigraph bf(4, 3);
  for (NodeId v = 0; v < bf.num_nodes(); ++v) {
    EXPECT_EQ(bf.encode(bf.level_of(v), bf.column_of(v)), v);
  }
  EXPECT_THROW(bf.encode(3, 0), precondition_error);
  EXPECT_THROW(bf.encode(0, 64), precondition_error);
}

TEST(Butterfly, StronglyConnected) {
  const ButterflyDigraph bf(2, 3);
  const auto scc = strongly_connected_components(bf);
  EXPECT_EQ(scc.count, 1u);
}

TEST(PartitionMap, Lemma38EdgesProject) {
  // If x -> y in B(d,n) then S_x^i -> S_y^{i+1} in F(d,n) for every level i.
  const Digit d = 2;
  const unsigned n = 3;
  const ButterflyDigraph bf(d, n);
  const DeBruijnDigraph g(d, n);
  for (Word x = 0; x < g.num_nodes(); ++x) {
    for (Word y : g.successors(x)) {
      for (unsigned i = 0; i < n; ++i) {
        const NodeId u = butterfly::partition_node(bf, x, i);
        const NodeId v = butterfly::partition_node(bf, y, i + 1);
        EXPECT_TRUE(bf.has_edge(u, v))
            << "x=" << x << " y=" << y << " level " << i;
      }
    }
  }
}

TEST(PartitionMap, SetsPartitionTheButterfly) {
  // The d^n sets S_x of size n tile the n * d^n butterfly nodes (the
  // [ABR90] partition of Figure 3.5).
  const ButterflyDigraph bf(2, 3);
  std::set<NodeId> seen;
  for (Word x = 0; x < 8; ++x) {
    for (unsigned i = 0; i < 3; ++i) {
      EXPECT_TRUE(seen.insert(butterfly::partition_node(bf, x, i)).second);
    }
  }
  EXPECT_EQ(seen.size(), bf.num_nodes());
}

TEST(Lift, PaperExampleFourCycleBecomesTwelveCycle) {
  // Lemma 3.9 illustration: the 4-cycle (110, 100, 001, 011) in B(2,3)
  // lifts to a 12-cycle in F(2,3).
  const ButterflyDigraph bf(2, 3);
  const WordSpace ws(2, 3);
  NodeCycle c;
  for (auto digits : {std::vector<Digit>{1, 1, 0}, {1, 0, 0}, {0, 0, 1}, {0, 1, 1}}) {
    c.nodes.push_back(ws.from_digits(digits));
  }
  const auto lifted = butterfly::lift_cycle(bf, c);
  ASSERT_EQ(lifted.size(), 12u);  // LCM(4,3)
  EXPECT_TRUE(butterfly::is_butterfly_cycle(bf, lifted));
  // Spot-check the first three entries against the paper's listing:
  // (0,110), (1,010), (2,010).
  EXPECT_EQ(lifted[0], bf.encode(0, ws.from_digits(std::vector<Digit>{1, 1, 0})));
  EXPECT_EQ(lifted[1], bf.encode(1, ws.from_digits(std::vector<Digit>{0, 1, 0})));
  EXPECT_EQ(lifted[2], bf.encode(2, ws.from_digits(std::vector<Digit>{0, 1, 0})));
}

TEST(Lift, LengthIsLcm) {
  const ButterflyDigraph bf(3, 4);
  const WordSpace ws(3, 4);
  // A necklace of length 2 lifts to LCM(2,4) = 4; length 4 lifts to 4.
  NodeCycle two;
  two.nodes = {ws.from_digits(std::vector<Digit>{0, 1, 0, 1}),
               ws.from_digits(std::vector<Digit>{1, 0, 1, 0})};
  EXPECT_EQ(butterfly::lift_cycle(bf, two).size(), 4u);
  EXPECT_TRUE(butterfly::is_butterfly_cycle(bf, butterfly::lift_cycle(bf, two)));
}

TEST(Lift, PullBackInvertsLift) {
  const ButterflyDigraph bf(2, 3);
  const WordSpace ws(2, 3);
  const SymbolCycle hc{{0, 0, 0, 1, 0, 1, 1, 1}};  // De Bruijn sequence
  ASSERT_TRUE(is_hamiltonian(ws, hc));
  const NodeCycle nodes = to_node_cycle(ws, hc);
  const auto lifted = butterfly::lift_cycle(bf, nodes);
  const auto debruijn_edges = edge_words(ws, hc);
  const std::set<Word> edge_set(debruijn_edges.begin(), debruijn_edges.end());
  for (std::size_t i = 0; i < lifted.size(); ++i) {
    const Word w =
        butterfly::pull_back_edge(bf, lifted[i], lifted[(i + 1) % lifted.size()]);
    EXPECT_TRUE(edge_set.contains(w));
  }
}

// --------------------------------------------------------------------------
// Propositions 3.5 / 3.6.

struct BfCase {
  Digit d;
  unsigned n;
};

class ButterflyHcs : public ::testing::TestWithParam<BfCase> {};

TEST_P(ButterflyHcs, DisjointFamilyLifts) {
  const auto [d, n] = GetParam();
  const ButterflyDigraph bf(d, n);
  const auto family = core::butterfly_disjoint_hcs(bf);
  EXPECT_GE(family.size(), psi(d));
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& hc : family) {
    EXPECT_EQ(hc.size(), bf.num_nodes()) << "lift must be Hamiltonian";
    EXPECT_TRUE(butterfly::is_butterfly_cycle(bf, hc));
    for (std::size_t i = 0; i < hc.size(); ++i) {
      EXPECT_TRUE(seen.insert({hc[i], hc[(i + 1) % hc.size()]}).second)
          << "lifted cycles must stay edge-disjoint";
    }
  }
}

TEST_P(ButterflyHcs, FaultFreeHcUnderBudget) {
  const auto [d, n] = GetParam();
  const ButterflyDigraph bf(d, n);
  const unsigned budget = static_cast<unsigned>(core::max_tolerable_edge_faults(d));
  Rng rng(0xbf11ULL + d + n);
  const Digraph m = bf.materialize();
  const auto all_edges = m.edge_list();
  for (unsigned trial = 0; trial < 10; ++trial) {
    const unsigned f = static_cast<unsigned>(rng.below(budget + 1));
    std::vector<std::pair<NodeId, NodeId>> faults;
    for (auto idx : rng.sample_distinct(all_edges.size(), f)) {
      faults.push_back(all_edges[idx]);
    }
    const auto hc = core::butterfly_fault_free_hc(bf, faults);
    ASSERT_TRUE(hc.has_value()) << "d=" << unsigned(d) << " n=" << n << " f=" << f;
    EXPECT_EQ(hc->size(), bf.num_nodes());
    EXPECT_TRUE(butterfly::is_butterfly_cycle(bf, *hc));
    std::set<std::pair<NodeId, NodeId>> used;
    for (std::size_t i = 0; i < hc->size(); ++i) {
      used.insert({(*hc)[i], (*hc)[(i + 1) % hc->size()]});
    }
    for (const auto& e : faults) {
      EXPECT_FALSE(used.contains(e));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoprimePairs, ButterflyHcs,
    ::testing::Values(BfCase{2, 3}, BfCase{2, 5}, BfCase{3, 2}, BfCase{3, 4},
                      BfCase{4, 3}, BfCase{5, 2}, BfCase{5, 3}, BfCase{7, 2},
                      BfCase{9, 2}, BfCase{6, 5}),
    [](const auto& pinfo) {
      return "F" + std::to_string(pinfo.param.d) + "_" + std::to_string(pinfo.param.n);
    });

TEST(ButterflyEmbedding, RequiresCoprimeDimensions) {
  const ButterflyDigraph bf(2, 4);  // gcd(2,4) = 2
  EXPECT_THROW((void)core::butterfly_disjoint_hcs(bf), precondition_error);
  EXPECT_THROW((void)core::butterfly_fault_free_hc(bf, {}), precondition_error);
}

TEST(ButterflyEmbedding, PullBackRejectsNonEdges) {
  const ButterflyDigraph bf(2, 3);
  EXPECT_THROW((void)butterfly::pull_back_edge(bf, 0, 0), precondition_error);
}

}  // namespace
}  // namespace dbr
