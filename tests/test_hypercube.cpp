#include <gtest/gtest.h>

#include <set>

#include "hypercube/fault_free_cycle.hpp"
#include "hypercube/hypercube.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr::hypercube {
namespace {

TEST(HypercubeGraph, Structure) {
  const Hypercube q(12);
  EXPECT_EQ(q.num_nodes(), 4096u);
  EXPECT_EQ(q.num_links(), 24576u);  // the Chapter 2 comparison figure
  EXPECT_TRUE(q.has_edge(0, 1));
  EXPECT_TRUE(q.has_edge(5, 4));
  EXPECT_FALSE(q.has_edge(0, 3));
  EXPECT_FALSE(q.has_edge(7, 7));
}

TEST(GrayCycle, IsHamiltonian) {
  for (unsigned n : {2u, 3u, 6u, 10u}) {
    const auto cycle = gray_cycle(n);
    EXPECT_EQ(cycle.size(), 1ull << n);
    EXPECT_TRUE(is_hypercube_cycle(n, cycle));
  }
}

TEST(HamPath, AllOppositeParityPairsSmall) {
  // Q_n is Hamiltonian-laceable: exhaustive over Q_3 and Q_4 endpoint pairs.
  for (unsigned n : {3u, 4u}) {
    for (HNode a = 0; a < (1ull << n); ++a) {
      for (HNode b = 0; b < (1ull << n); ++b) {
        if (a == b || parity(a) == parity(b)) continue;
        const auto path = hamiltonian_path(n, a, b);
        EXPECT_EQ(path.size(), 1ull << n);
        EXPECT_TRUE(is_hypercube_path(n, path));
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
      }
    }
  }
}

TEST(HamPath, LargeInstance) {
  const auto path = hamiltonian_path(10, 0, 1023 ^ 512);
  EXPECT_EQ(path.size(), 1024u);
  EXPECT_TRUE(is_hypercube_path(10, path));
}

TEST(HamPath, RejectsSameParity) {
  EXPECT_THROW((void)hamiltonian_path(3, 0, 3), precondition_error);
}

TEST(NearHamPath, AllSameParityPairsSmall) {
  for (unsigned n : {2u, 3u, 4u}) {
    for (HNode a = 0; a < (1ull << n); ++a) {
      for (HNode b = 0; b < (1ull << n); ++b) {
        if (a == b || parity(a) != parity(b)) continue;
        const auto path = near_hamiltonian_path(n, a, b);
        EXPECT_EQ(path.size(), (1ull << n) - 1) << a << " " << b;
        EXPECT_TRUE(is_hypercube_path(n, path));
        EXPECT_EQ(path.front(), a);
        EXPECT_EQ(path.back(), b);
      }
    }
  }
}

// --------------------------------------------------------------------------
// The fault-free cycle bound 2^n - 2f for f <= n-2 ([WC92, CL91a]).

class FaultFreeCycle : public ::testing::TestWithParam<unsigned> {};

TEST_P(FaultFreeCycle, RandomFaultSetsMeetBound) {
  const unsigned n = GetParam();
  Rng rng(0xcafeULL + n);
  for (unsigned trial = 0; trial < 30; ++trial) {
    const unsigned f = static_cast<unsigned>(rng.below(n - 1));  // 0..n-2
    const auto faults = rng.sample_distinct(1ull << n, f);
    const auto cycle = fault_free_cycle(n, faults);
    EXPECT_GE(cycle.size(), (1ull << n) - 2 * f) << "n=" << n << " f=" << f;
    EXPECT_TRUE(is_hypercube_cycle(n, cycle));
    const std::set<HNode> on_cycle(cycle.begin(), cycle.end());
    for (HNode fault : faults) {
      EXPECT_FALSE(on_cycle.contains(fault));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, FaultFreeCycle,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 10u),
                         [](const auto& pinfo) {
                           return "Q" + std::to_string(pinfo.param);
                         });

TEST(FaultFreeCycleEdge, AdjacentFaults) {
  // Adjacent faults are the tight case for the 2^n - 2f bound.
  const unsigned n = 6;
  const std::vector<HNode> faults{0, 1, 3, 7};  // a chain of adjacent nodes
  const auto cycle = fault_free_cycle(n, faults);
  EXPECT_GE(cycle.size(), 64u - 8u);
  EXPECT_TRUE(is_hypercube_cycle(n, cycle));
}

TEST(FaultFreeCycleEdge, MaxFaultsSmall) {
  // Exhaustive fault pairs in Q_4 (f = n - 2 = 2).
  const unsigned n = 4;
  for (HNode a = 0; a < 16; ++a) {
    for (HNode b = a + 1; b < 16; ++b) {
      const std::vector<HNode> faults{a, b};
      const auto cycle = fault_free_cycle(n, faults);
      EXPECT_GE(cycle.size(), 12u) << a << "," << b;
      EXPECT_TRUE(is_hypercube_cycle(n, cycle));
    }
  }
}

TEST(FaultFreeCycleEdge, Chapter2ComparisonInstance) {
  // The paper's example: 4096-node hypercube with f = 2 gives a cycle of
  // length 4092.
  const auto cycle = fault_free_cycle(12, std::vector<HNode>{17, 2048});
  EXPECT_GE(cycle.size(), 4092u);
  EXPECT_TRUE(is_hypercube_cycle(12, cycle));
}

TEST(FaultFreeCycleEdge, Preconditions) {
  EXPECT_THROW((void)fault_free_cycle(2, std::vector<HNode>{}), precondition_error);
  const std::vector<HNode> too_many{0, 1, 2, 3};
  EXPECT_THROW((void)fault_free_cycle(5, too_many), precondition_error);
  const std::vector<HNode> out_of_range{1ull << 40};
  EXPECT_THROW((void)fault_free_cycle(5, out_of_range), precondition_error);
}

// --------------------------------------------------------------------------
// Fault-free paths.

TEST(FaultFreePath, MeetsTargetsRandomly) {
  Rng rng(0x9999);
  for (unsigned n : {4u, 5u, 6u, 8u}) {
    for (unsigned trial = 0; trial < 20; ++trial) {
      const unsigned f = static_cast<unsigned>(rng.below(n - 1));
      const auto faults = rng.sample_distinct(1ull << n, f);
      const std::set<HNode> fault_set(faults.begin(), faults.end());
      HNode a = rng.below(1ull << n), b = rng.below(1ull << n);
      if (a == b || fault_set.contains(a) || fault_set.contains(b)) continue;
      const auto path = fault_free_path(n, a, b, faults);
      EXPECT_TRUE(is_hypercube_path(n, path));
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      const std::uint64_t penalty = 2 * f + (parity(a) == parity(b) ? 1 : 0);
      EXPECT_GE(path.size(), (1ull << n) - penalty);
      for (HNode v : path) EXPECT_FALSE(fault_set.contains(v));
    }
  }
}

}  // namespace
}  // namespace dbr::hypercube
