#include "gf/field.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace dbr::gf {
namespace {

class FieldAxioms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FieldAxioms, AdditiveGroup) {
  const Field f(GetParam());
  const auto q = static_cast<Field::Elem>(f.order());
  for (Field::Elem a = 0; a < q; ++a) {
    EXPECT_EQ(f.add(a, 0), a);
    EXPECT_EQ(f.add(a, f.neg(a)), 0u);
    for (Field::Elem b = 0; b < q; ++b) {
      EXPECT_EQ(f.add(a, b), f.add(b, a));
      for (Field::Elem c = 0; c < q; ++c) {
        EXPECT_EQ(f.add(f.add(a, b), c), f.add(a, f.add(b, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, MultiplicativeGroup) {
  const Field f(GetParam());
  const auto q = static_cast<Field::Elem>(f.order());
  for (Field::Elem a = 0; a < q; ++a) {
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.mul(a, 0), 0u);
    if (a != 0) {
      EXPECT_EQ(f.mul(a, f.inv(a)), 1u);
    }
    for (Field::Elem b = 0; b < q; ++b) {
      EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    }
  }
}

TEST_P(FieldAxioms, Distributivity) {
  const Field f(GetParam());
  const auto q = static_cast<Field::Elem>(f.order());
  for (Field::Elem a = 0; a < q; ++a) {
    for (Field::Elem b = 0; b < q; ++b) {
      for (Field::Elem c = 0; c < q; ++c) {
        EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
      }
    }
  }
}

TEST_P(FieldAxioms, GeneratorSpansMultiplicativeGroup) {
  const Field f(GetParam());
  EXPECT_EQ(f.element_order(f.generator()), f.order() - 1);
  std::vector<bool> seen(f.order(), false);
  Field::Elem cur = 1;
  for (std::uint64_t i = 0; i + 1 < f.order(); ++i) {
    EXPECT_FALSE(seen[cur]);
    seen[cur] = true;
    cur = f.mul(cur, f.generator());
  }
  EXPECT_EQ(cur, 1u);
}

TEST_P(FieldAxioms, ExpLogRoundTrip) {
  const Field f(GetParam());
  for (Field::Elem a = 1; a < f.order(); ++a) {
    EXPECT_EQ(f.exp(f.log(a)), a);
  }
}

TEST_P(FieldAxioms, FrobeniusFixesPrimeSubfield) {
  // a^p == a for a in the prime subfield {0, 1, ..., p-1}.
  const Field f(GetParam());
  for (std::uint64_t v = 0; v < f.characteristic(); ++v) {
    const Field::Elem a = f.from_int(v);
    EXPECT_EQ(f.pow(a, f.characteristic()), a);
  }
}

TEST_P(FieldAxioms, CharacteristicAnnihilates) {
  // Adding any element to itself p times gives 0.
  const Field f(GetParam());
  for (Field::Elem a = 0; a < f.order(); ++a) {
    Field::Elem sum = 0;
    for (std::uint64_t i = 0; i < f.characteristic(); ++i) sum = f.add(sum, a);
    EXPECT_EQ(sum, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, FieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 32),
                         [](const auto& pinfo) { return "GF" + std::to_string(pinfo.param); });

TEST(Field, RejectsNonPrimePowers) {
  EXPECT_THROW(Field(1), precondition_error);
  EXPECT_THROW(Field(6), precondition_error);
  EXPECT_THROW(Field(12), precondition_error);
  EXPECT_THROW(Field(100), precondition_error);  // 2^2 * 5^2
}

TEST(Field, PrimeFieldIsModularArithmetic) {
  const Field f(13);
  for (Field::Elem a = 0; a < 13; ++a) {
    for (Field::Elem b = 0; b < 13; ++b) {
      EXPECT_EQ(f.add(a, b), (a + b) % 13);
      EXPECT_EQ(f.mul(a, b), (a * b) % 13);
    }
  }
}

TEST(Field, GF4MatchesExample32Structure) {
  // Example 3.2: GF(4) = {0, 1, z, z^2} with z a root of x^2 + x + 1 and
  // 1 + z = z^2, 1 + z^2 = z, z + z^2 = 1, z^3 = 1.
  const Field f(4);
  const Field::Elem z = 2;   // polynomial "x" encodes as 2 in base 2
  const Field::Elem z2 = 3;  // x + 1
  EXPECT_EQ(f.mul(z, z), z2);
  EXPECT_EQ(f.add(1, z), z2);
  EXPECT_EQ(f.add(1, z2), z);
  EXPECT_EQ(f.add(z, z2), 1u);
  EXPECT_EQ(f.pow(z, 3), 1u);
  EXPECT_EQ(f.characteristic(), 2u);
  EXPECT_EQ(f.degree(), 2u);
}

TEST(Field, GF9Structure) {
  const Field f(9);
  EXPECT_EQ(f.characteristic(), 3u);
  EXPECT_EQ(f.degree(), 2u);
  // In characteristic 3, (a+b)^3 = a^3 + b^3 (freshman's dream).
  for (Field::Elem a = 0; a < 9; ++a) {
    for (Field::Elem b = 0; b < 9; ++b) {
      EXPECT_EQ(f.pow(f.add(a, b), 3), f.add(f.pow(a, 3), f.pow(b, 3)));
    }
  }
}

TEST(Field, CoefficientsRoundTrip) {
  const Field f(27);
  for (Field::Elem a = 0; a < 27; ++a) {
    const auto coeffs = f.coefficients(a);
    ASSERT_EQ(coeffs.size(), 3u);
    Field::Elem rebuilt = 0;
    std::uint64_t place = 1;
    for (unsigned i = 0; i < 3; ++i) {
      rebuilt = static_cast<Field::Elem>(rebuilt + coeffs[i] * place);
      place *= 3;
    }
    EXPECT_EQ(rebuilt, a);
  }
}

TEST(Field, ElementOrderDividesGroupOrder) {
  const Field f(16);
  for (Field::Elem a = 1; a < 16; ++a) {
    const auto ord = f.element_order(a);
    EXPECT_EQ(15 % ord, 0u);
    EXPECT_EQ(f.pow(a, ord), 1u);
    if (ord > 1) {
      EXPECT_NE(f.pow(a, ord / (ord % 2 == 0 ? 2 : ord)), 1u);
    }
  }
}

TEST(Field, InverseOfZeroThrows) {
  const Field f(5);
  EXPECT_THROW(f.inv(0), precondition_error);
  EXPECT_THROW(f.add(5, 0), precondition_error);
}

}  // namespace
}  // namespace dbr::gf
