#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "service/engine.hpp"
#include "service/session.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

// Seeded fault-scenario fuzzer: sweeps hundreds of generated scenarios per
// strategy through the query engine and holds every answer against the
// independent verify/ oracle, the uncached baseline, and the
// canonicalization contract. Every assertion message leads with the
// scenario's "(seed=…, base=…, n=…, strategy=…)" tuple; feed the seed back
// into verify::make_scenario(seed, strategy) to reproduce the instance.
//
// Knobs (env): DBR_FUZZ_SCENARIOS  scenarios per strategy (default 200)
//              DBR_FUZZ_SEED       base seed              (default 20260729)

namespace dbr::verify {
namespace {

using service::EmbedEngine;
using service::EmbedRequest;
using service::EmbedResponse;
using service::EmbedStatus;
using service::EngineOptions;
using service::Strategy;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

std::size_t sweep_size() {
  return static_cast<std::size_t>(env_u64("DBR_FUZZ_SCENARIOS", 200));
}

std::uint64_t base_seed() { return env_u64("DBR_FUZZ_SEED", 20260729); }

/// Reversed and with the first fault duplicated (both word lists): a
/// different presentation of the same fault set, which canonicalization
/// must collapse onto the original cache entry.
EmbedRequest representation_variant(const EmbedRequest& req) {
  EmbedRequest out = req;
  std::reverse(out.faults.begin(), out.faults.end());
  if (!out.faults.empty()) out.faults.push_back(out.faults.back());
  std::reverse(out.edge_faults.begin(), out.edge_faults.end());
  if (!out.edge_faults.empty()) out.edge_faults.push_back(out.edge_faults.back());
  return out;
}

void run_sweep(Strategy strategy) {
  EngineOptions options;
  options.validate_responses = true;
  EmbedEngine engine(options);
  EmbedEngine cold(EngineOptions{.enable_cache = false});

  std::size_t embedded = 0;
  for (const Scenario& sc : make_sweep(base_seed(), strategy, sweep_size())) {
    const EmbedResponse resp = engine.query(sc.request);
    ASSERT_NE(resp.result, nullptr) << "FUZZ FAILURE " << sc.describe();
    // The engine's own validate_responses hook quarantines oracle
    // violations as kInternalError; none may occur.
    ASSERT_NE(resp.result->status, EmbedStatus::kInternalError)
        << "FUZZ FAILURE " << sc.describe() << ": " << resp.result->error;

    const OracleReport report = check_response(sc.request, *resp.result);
    ASSERT_TRUE(report.ok())
        << "FUZZ FAILURE " << sc.describe() << ": " << report.to_string();

    // The cached serving path must be bit-identical to a cold computation.
    const auto baseline = cold.compute_uncached(sc.request);
    ASSERT_TRUE(resp.result->same_embedding(*baseline))
        << "FUZZ FAILURE " << sc.describe()
        << ": cached result differs from compute_uncached";

    // A permuted/duplicated presentation of the same fault set must hit the
    // entry just written (valid scenario answers are always cacheable).
    const EmbedResponse again = engine.query(representation_variant(sc.request));
    ASSERT_TRUE(again.cache_hit)
        << "FUZZ FAILURE " << sc.describe()
        << ": permuted presentation missed the cache";
    ASSERT_EQ(again.result, resp.result)
        << "FUZZ FAILURE " << sc.describe()
        << ": permuted presentation returned a different object";

    if (resp.result->status == EmbedStatus::kOk) ++embedded;
  }
  EXPECT_EQ(engine.validation_stats().violations, 0u);
  EXPECT_GT(engine.validation_stats().checked, 0u);
  // The regime mix always contains embeddable scenarios; a sweep that never
  // embeds means the generator or the dispatch is broken.
  EXPECT_GT(embedded, sweep_size() / 4);
}

TEST(FuzzScenarios, Auto) { run_sweep(Strategy::kAuto); }
TEST(FuzzScenarios, Ffc) { run_sweep(Strategy::kFfc); }
TEST(FuzzScenarios, EdgeAuto) { run_sweep(Strategy::kEdgeAuto); }
TEST(FuzzScenarios, EdgeScan) { run_sweep(Strategy::kEdgeScan); }
TEST(FuzzScenarios, EdgePhi) { run_sweep(Strategy::kEdgePhi); }
TEST(FuzzScenarios, Butterfly) { run_sweep(Strategy::kButterfly); }
TEST(FuzzScenarios, Mixed) { run_sweep(Strategy::kMixed); }

// Incremental repair regime sweep: seeded churn scripts replayed through a
// repair-enabled session, every served answer held against the oracle and
// the cold stateless baseline. Repaired rings must be oracle-valid with
// the cold solve's envelope; the only legal status divergence is repair
// strictly improving on a beyond-guarantee kNoEmbedding.
TEST(FuzzScenarios, Repair) {
  const std::size_t scripts =
      std::max<std::size_t>(2, sweep_size() / 25);  // scripts x 24 events
  std::uint64_t spliced = 0;
  for (Strategy strategy :
       {Strategy::kFfc, Strategy::kEdgeAuto, Strategy::kEdgeScan,
        Strategy::kEdgePhi, Strategy::kButterfly, Strategy::kMixed}) {
    for (std::size_t i = 0; i < scripts; ++i) {
      const ChurnScript script =
          make_churn_script(base_seed() + i, strategy, 24);
      EngineOptions options;
      options.incremental_repair = true;
      options.validate_responses = true;  // engine-checked fallback solves
      EmbedEngine engine(options);
      service::EmbedSession session(
          engine, script.base_request.base, script.base_request.n,
          script.base_request.fault_kind, script.base_request.strategy);
      EmbedEngine cold(EngineOptions{.enable_cache = false});
      for (const ChurnEvent& event : script.events) {
        if (event.add) {
          session.add_fault(event.kind, event.fault);
        } else {
          session.clear_fault(event.kind, event.fault);
        }
        const EmbedResponse served = session.current_ring();
        EmbedRequest request = script.base_request;
        request.faults = session.faults();
        request.edge_faults = session.edge_faults();
        ASSERT_NE(served.result, nullptr)
            << "FUZZ FAILURE " << script.describe();
        const OracleReport report = check_response(request, *served.result);
        ASSERT_TRUE(report.ok()) << "FUZZ FAILURE " << script.describe()
                                 << ": " << report.to_string();
        const EmbedResponse baseline = cold.query(request);
        if (served.result->status == baseline.result->status) {
          ASSERT_EQ(served.result->lower_bound, baseline.result->lower_bound)
              << "FUZZ FAILURE " << script.describe();
          ASSERT_EQ(served.result->upper_bound, baseline.result->upper_bound)
              << "FUZZ FAILURE " << script.describe();
        } else {
          ASSERT_EQ(served.result->status, EmbedStatus::kOk)
              << "FUZZ FAILURE " << script.describe();
          ASSERT_EQ(baseline.result->status, EmbedStatus::kNoEmbedding)
              << "FUZZ FAILURE " << script.describe();
        }
      }
      // A splice the session-level oracle vetoed is a repair bug even
      // though the fallback kept the served answer correct.
      ASSERT_EQ(session.repair_stats().oracle_rejections, 0u)
          << "FUZZ FAILURE " << script.describe();
      spliced += session.repair_stats().spliced;
    }
  }
  EXPECT_GT(spliced, 0u);
}

// The same edge-fault instance served under the scan, the phi-construction
// and the auto dispatch: every kOk ring must pass the oracle, and auto must
// embed whenever either specialist does (it tries both routes).
TEST(FuzzScenarios, CrossStrategyEdgeConsistency) {
  EmbedEngine engine;
  const std::size_t count = std::min<std::size_t>(sweep_size(), 100);
  for (const Scenario& sc :
       make_sweep(base_seed() ^ 0xC0FFEEull, Strategy::kEdgeAuto, count)) {
    EmbedRequest scan_req = sc.request;
    scan_req.strategy = Strategy::kEdgeScan;
    EmbedRequest phi_req = sc.request;
    phi_req.strategy = Strategy::kEdgePhi;

    const EmbedResponse auto_resp = engine.query(sc.request);
    const EmbedResponse scan_resp = engine.query(scan_req);
    const EmbedResponse phi_resp = engine.query(phi_req);

    ASSERT_TRUE(check_response(sc.request, *auto_resp.result).ok())
        << "FUZZ FAILURE " << sc.describe() << ": "
        << check_response(sc.request, *auto_resp.result).to_string();
    ASSERT_TRUE(check_response(scan_req, *scan_resp.result).ok())
        << "FUZZ FAILURE " << sc.describe() << " (as edge_scan): "
        << check_response(scan_req, *scan_resp.result).to_string();
    ASSERT_TRUE(check_response(phi_req, *phi_resp.result).ok())
        << "FUZZ FAILURE " << sc.describe() << " (as edge_phi): "
        << check_response(phi_req, *phi_resp.result).to_string();

    const bool any_specialist_ok =
        scan_resp.result->status == EmbedStatus::kOk ||
        phi_resp.result->status == EmbedStatus::kOk;
    if (any_specialist_ok) {
      EXPECT_EQ(auto_resp.result->status, EmbedStatus::kOk)
          << "FUZZ FAILURE " << sc.describe()
          << ": a specialist embedded but edge_auto did not";
    }
  }
}

}  // namespace
}  // namespace dbr::verify
