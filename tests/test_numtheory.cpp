#include "nt/numtheory.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/require.hpp"

namespace dbr::nt {
namespace {

TEST(NumTheory, GcdLcm) {
  EXPECT_EQ(gcd(12, 18), 6u);
  EXPECT_EQ(gcd(7, 13), 1u);
  EXPECT_EQ(gcd(0, 5), 5u);
  EXPECT_EQ(lcm(4, 6), 12u);
  EXPECT_EQ(lcm(4, 3), 12u);     // LCM(k,n) used by the butterfly lift
  EXPECT_EQ(lcm(4096, 12), 12288u);
}

TEST(NumTheory, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(7, 0, 13), 1u);
  EXPECT_EQ(pow_mod(0, 5, 13), 0u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(pow_mod(3, 12, 13), 1u);
  EXPECT_EQ(pow_mod(123456789, 1000000007ull - 1, 1000000007ull), 1u);
}

TEST(NumTheory, IsPrimeSmall) {
  const std::vector<u64> primes{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};
  std::size_t idx = 0;
  for (u64 n = 0; n <= 38; ++n) {
    const bool expected = idx < primes.size() && primes[idx] == n;
    EXPECT_EQ(is_prime(n), expected) << n;
    if (expected) ++idx;
  }
}

TEST(NumTheory, IsPrimeLarge) {
  EXPECT_TRUE(is_prime(1000000007ull));
  EXPECT_TRUE(is_prime((1ull << 61) - 1));  // Mersenne prime
  EXPECT_FALSE(is_prime((1ull << 62) - 1));
  EXPECT_FALSE(is_prime(3215031751ull));  // strong pseudoprime to bases 2,3,5,7
}

TEST(NumTheory, FactorRoundTrip) {
  for (u64 n : {2ull, 12ull, 97ull, 1024ull, 59049ull, 1000000ull,
                (1ull << 40) - 1, 999999999989ull}) {
    u64 product = 1;
    for (const auto& pp : factor(n)) {
      EXPECT_TRUE(is_prime(pp.prime));
      product *= pp.value();
    }
    EXPECT_EQ(product, n);
  }
}

TEST(NumTheory, FactorKnownValues) {
  const auto f = factor(360);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].prime, 2u);
  EXPECT_EQ(f[0].exponent, 3u);
  EXPECT_EQ(f[1].prime, 3u);
  EXPECT_EQ(f[1].exponent, 2u);
  EXPECT_EQ(f[2].prime, 5u);
  EXPECT_EQ(f[2].exponent, 1u);
}

TEST(NumTheory, Divisors) {
  EXPECT_EQ(divisors(12), (std::vector<u64>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(1), (std::vector<u64>{1}));
  EXPECT_EQ(divisors(13), (std::vector<u64>{1, 13}));
  // Divisor lattice is what the Chapter 4 Moebius sums range over.
  EXPECT_EQ(divisors(6).size(), 4u);
}

TEST(NumTheory, MobiusValues) {
  // mu table from the definition in Section 4.1.
  const std::map<u64, int> expected{{1, 1},  {2, -1}, {3, -1}, {4, 0},
                                    {5, -1}, {6, 1},  {7, -1}, {8, 0},
                                    {9, 0},  {10, 1}, {12, 0}, {30, -1}};
  for (const auto& [n, mu] : expected) EXPECT_EQ(mobius(n), mu) << n;
}

TEST(NumTheory, MobiusSumOverDivisorsIsZero) {
  // sum_{d | n} mu(d) == [n == 1], the defining property used in inversion.
  for (u64 n = 1; n <= 200; ++n) {
    int sum = 0;
    for (u64 d : divisors(n)) sum += mobius(d);
    EXPECT_EQ(sum, n == 1 ? 1 : 0) << n;
  }
}

TEST(NumTheory, EulerPhi) {
  EXPECT_EQ(euler_phi(1), 1u);
  EXPECT_EQ(euler_phi(12), 4u);
  EXPECT_EQ(euler_phi(13), 12u);
  EXPECT_EQ(euler_phi(36), 12u);
  // phi is multiplicative on coprime parts.
  EXPECT_EQ(euler_phi(35), euler_phi(5) * euler_phi(7));
}

TEST(NumTheory, PhiDivisorSumIdentity) {
  // sum_{d|n} phi(d) == n (used in Proposition 4.2's simplification).
  for (u64 n = 1; n <= 200; ++n) {
    u64 sum = 0;
    for (u64 d : divisors(n)) sum += euler_phi(d);
    EXPECT_EQ(sum, n);
  }
}

TEST(NumTheory, IsPrimePower) {
  u64 p = 0;
  unsigned e = 0;
  EXPECT_TRUE(is_prime_power(8, &p, &e));
  EXPECT_EQ(p, 2u);
  EXPECT_EQ(e, 3u);
  EXPECT_TRUE(is_prime_power(27, &p, &e));
  EXPECT_EQ(p, 3u);
  EXPECT_EQ(e, 3u);
  EXPECT_TRUE(is_prime_power(13, &p, &e));
  EXPECT_EQ(e, 1u);
  EXPECT_FALSE(is_prime_power(1));
  EXPECT_FALSE(is_prime_power(6));
  EXPECT_FALSE(is_prime_power(12));
  EXPECT_FALSE(is_prime_power(36));
}

TEST(NumTheory, PrimitiveRoot) {
  // 7 is a primitive root of Z13 (used in Example 3.3); the smallest is 2.
  EXPECT_EQ(primitive_root(13), 2u);
  EXPECT_EQ(multiplicative_order(7, 13), 12u);
  // Check the defining property for a range of primes.
  for (u64 prime : {3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull, 37ull}) {
    const u64 g = primitive_root(prime);
    EXPECT_EQ(multiplicative_order(g, prime), prime - 1) << prime;
  }
}

TEST(NumTheory, MultiplicativeOrderDividesGroupOrder) {
  for (u64 m : {9ull, 14ull, 15ull, 26ull}) {
    for (u64 a = 1; a < m; ++a) {
      if (gcd(a, m) != 1) continue;
      const u64 ord = multiplicative_order(a, m);
      EXPECT_EQ(euler_phi(m) % ord, 0u);
      EXPECT_EQ(pow_mod(a, ord, m), 1u);
    }
  }
}

TEST(NumTheory, Binomial) {
  EXPECT_EQ(binomial(12, 4), 495u);  // appears in the weight-4 B(2,12) count
  EXPECT_EQ(binomial(6, 2), 15u);
  EXPECT_EQ(binomial(6, 3), 20u);
  EXPECT_EQ(binomial(3, 1), 3u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(4, 7), 0u);
  // Pascal identity sweep.
  for (u64 n = 1; n <= 40; ++n) {
    for (u64 k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(NumTheory, BoundedCompositionsMatchesBinaryBinomial) {
  // c_2(n,k) == C(n,k).
  for (u64 n = 0; n <= 16; ++n) {
    for (u64 k = 0; k <= n; ++k) {
      EXPECT_EQ(bounded_compositions(2, n, k), binomial(n, k));
    }
  }
}

TEST(NumTheory, BoundedCompositionsPaperValue) {
  // Section 4.3: c_3(4,4) = 19 (and c_3(2,2) = 3, c_3(1,1) = 1).
  EXPECT_EQ(bounded_compositions(3, 4, 4), 19u);
  EXPECT_EQ(bounded_compositions(3, 2, 2), 3u);
  EXPECT_EQ(bounded_compositions(3, 1, 1), 1u);
}

TEST(NumTheory, BoundedCompositionsBruteForce) {
  // Cross-check against direct enumeration of d-ary tuples by weight.
  for (u64 d = 2; d <= 5; ++d) {
    for (u64 n = 1; n <= 6; ++n) {
      std::map<u64, u64> by_weight;
      u64 total = 1;
      for (u64 i = 0; i < n; ++i) total *= d;
      for (u64 x = 0; x < total; ++x) {
        u64 v = x, w = 0;
        for (u64 i = 0; i < n; ++i) {
          w += v % d;
          v /= d;
        }
        ++by_weight[w];
      }
      for (u64 k = 0; k <= n * (d - 1); ++k) {
        EXPECT_EQ(bounded_compositions(d, n, k), by_weight[k]) << d << " " << n << " " << k;
      }
    }
  }
}

TEST(NumTheory, BoundedCompositionsRowSums) {
  // Sum over k must equal d^n.
  for (u64 d = 2; d <= 6; ++d) {
    for (u64 n = 1; n <= 8; ++n) {
      u64 sum = 0, total = 1;
      for (u64 i = 0; i < n; ++i) total *= d;
      for (u64 k = 0; k <= n * (d - 1); ++k) sum += bounded_compositions(d, n, k);
      EXPECT_EQ(sum, total);
    }
  }
}

TEST(NumTheory, Preconditions) {
  EXPECT_THROW(pow_mod(2, 3, 0), precondition_error);
  EXPECT_THROW(factor(0), precondition_error);
  EXPECT_THROW(mobius(0), precondition_error);
  EXPECT_THROW(primitive_root(12), precondition_error);
  EXPECT_THROW(multiplicative_order(2, 4), precondition_error);
  EXPECT_THROW(lcm(0, 3), precondition_error);
}

}  // namespace
}  // namespace dbr::nt
