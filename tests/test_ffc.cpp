#include "core/ffc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "debruijn/cycle.hpp"
#include "graph/longest_cycle.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr::core {
namespace {

Word word_of(const WordSpace& ws, std::initializer_list<Digit> digits) {
  return ws.from_digits(std::vector<Digit>(digits));
}

// --------------------------------------------------------------------------
// Example 2.1: B(3,3) with faults {020, 112}.

class Example21 : public ::testing::Test {
 protected:
  Example21() : solver_(DeBruijnDigraph(3, 3)) {
    const WordSpace& ws = solver_.graph().words();
    faults_ = {word_of(ws, {0, 2, 0}), word_of(ws, {1, 1, 2})};
    result_ = solver_.solve(faults_);
  }

  FfcSolver solver_;
  std::vector<Word> faults_;
  FfcResult result_;
};

TEST_F(Example21, BStarHas21Nodes) {
  EXPECT_EQ(result_.bstar_size, 21u);
  EXPECT_EQ(result_.cycle.length(), 21u);
  EXPECT_EQ(result_.faulty_node_count, 6u);
  EXPECT_EQ(result_.necklace_count, 9u);  // 11 necklaces in B(3,3) minus 2 faulty
}

TEST_F(Example21, RootIsAllZeros) {
  EXPECT_EQ(result_.root, 0u);
}

TEST_F(Example21, ReproducesThePaperCycleExactly) {
  // H = (000, 001, 011, 111, 110, 101, 012, 122, 222, 221, 212,
  //      120, 201, 010, 102, 022, 220, 202, 021, 210, 100).
  const WordSpace& ws = solver_.graph().words();
  const std::vector<std::vector<Digit>> expected{
      {0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}, {1, 0, 1},
      {0, 1, 2}, {1, 2, 2}, {2, 2, 2}, {2, 2, 1}, {2, 1, 2}, {1, 2, 0},
      {2, 0, 1}, {0, 1, 0}, {1, 0, 2}, {0, 2, 2}, {2, 2, 0}, {2, 0, 2},
      {0, 2, 1}, {2, 1, 0}, {1, 0, 0}};
  ASSERT_EQ(result_.cycle.length(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result_.cycle.nodes[i], ws.from_digits(expected[i]))
        << "position " << i << ": got " << ws.to_string(result_.cycle.nodes[i]);
  }
}

TEST_F(Example21, CycleIsValidAndAvoidsFaultyNecklaces) {
  const WordSpace& ws = solver_.graph().words();
  EXPECT_TRUE(is_cycle(ws, result_.cycle));
  const std::set<Word> cycle_nodes(result_.cycle.nodes.begin(),
                                   result_.cycle.nodes.end());
  for (Word f : faults_) {
    for (Word v : necklace_nodes(ws, f)) {
      EXPECT_FALSE(cycle_nodes.contains(v));
    }
  }
}

TEST_F(Example21, SpanningTreeMatchesFigure24a) {
  // Figure 2.4(a): [000]-00->[001]; [001]-01->{[011],[012]};
  // [011]-11->[111]; [012]-12->[122]; [122]-22->[222];
  // [001]-10->[021]; [021]-02->[022].
  const WordSpace& ws = solver_.graph().words();
  const WordSpace label_ws(3, 2);  // labels are 2-digit values
  auto T = [&](std::initializer_list<Digit> from, std::initializer_list<Digit> to,
               std::initializer_list<Digit> label) {
    return LabeledEdge{word_of(ws, from), word_of(ws, to),
                       label_ws.from_digits(std::vector<Digit>(label))};
  };
  std::vector<LabeledEdge> expected{
      T({0, 0, 0}, {0, 0, 1}, {0, 0}), T({0, 0, 1}, {0, 1, 1}, {0, 1}),
      T({0, 0, 1}, {0, 1, 2}, {0, 1}), T({0, 1, 1}, {1, 1, 1}, {1, 1}),
      T({0, 1, 2}, {1, 2, 2}, {1, 2}), T({1, 2, 2}, {2, 2, 2}, {2, 2}),
      T({0, 0, 1}, {0, 2, 1}, {1, 0}), T({0, 2, 1}, {0, 2, 2}, {0, 2})};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result_.tree_edges, expected);
}

TEST_F(Example21, ModifiedTreeIsEulerianUnderH) {
  // Lemma 2.2: the projection J of H onto D is an Eulerian circuit of D -
  // every D edge is used exactly once by the necklace-to-necklace moves.
  const WordSpace& ws = solver_.graph().words();
  std::multiset<std::pair<Word, Word>> used;
  const auto& nodes = result_.cycle.nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Word u = nodes[i];
    const Word v = nodes[(i + 1) % nodes.size()];
    const Word ru = ws.min_rotation(u);
    const Word rv = ws.min_rotation(v);
    if (ru != rv) used.insert({ru, rv});
  }
  std::multiset<std::pair<Word, Word>> expected;
  for (const LabeledEdge& e : result_.modified_edges) {
    expected.insert({e.from, e.to});
  }
  EXPECT_EQ(used, expected);
}

TEST_F(Example21, NecklaceAdjacencyAntiparallel) {
  const auto active = solver_.active_mask(faults_);
  const auto nstar = solver_.necklace_adjacency(active);
  EXPECT_EQ(nstar.reps.size(), 9u);
  // Every w-edge has an antiparallel partner with the same label.
  const std::set<NecklaceAdjacency::Edge> edges(nstar.edges.begin(),
                                                nstar.edges.end());
  for (const auto& e : edges) {
    EXPECT_TRUE(edges.contains({e.to, e.from, e.label}));
    EXPECT_NE(e.from, e.to);
  }
  // T and D edges are all supported by N*.
  std::set<std::tuple<Word, Word, Word>> support;
  for (const auto& e : nstar.edges) support.insert({e.from, e.to, e.label});
  for (const LabeledEdge& e : result_.tree_edges) {
    EXPECT_TRUE(support.contains({e.from, e.to, e.label}));
  }
  for (const LabeledEdge& e : result_.modified_edges) {
    EXPECT_TRUE(support.contains({e.from, e.to, e.label}));
  }
}

// --------------------------------------------------------------------------
// Zero faults: the FFC algorithm generates full De Bruijn sequences.

class NoFaults : public ::testing::TestWithParam<std::pair<Digit, unsigned>> {};

TEST_P(NoFaults, ProducesHamiltonianCycle) {
  const auto [d, n] = GetParam();
  const FfcSolver solver(DeBruijnDigraph(d, n));
  const auto result = solver.solve({});
  EXPECT_EQ(result.bstar_size, solver.graph().num_nodes());
  EXPECT_TRUE(is_hamiltonian(solver.graph().words(), result.cycle));
  EXPECT_TRUE(result.faulty_necklace_reps.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, NoFaults,
    ::testing::Values(std::pair<Digit, unsigned>{2, 1}, std::pair<Digit, unsigned>{2, 4},
                      std::pair<Digit, unsigned>{2, 8}, std::pair<Digit, unsigned>{3, 3},
                      std::pair<Digit, unsigned>{3, 5}, std::pair<Digit, unsigned>{4, 3},
                      std::pair<Digit, unsigned>{5, 3}, std::pair<Digit, unsigned>{6, 2},
                      std::pair<Digit, unsigned>{7, 2}, std::pair<Digit, unsigned>{4, 5}),
    [](const auto& pinfo) {
      return "B" + std::to_string(pinfo.param.first) + "_" +
             std::to_string(pinfo.param.second);
    });

// --------------------------------------------------------------------------
// Random fault sets: structural correctness of H in every case.

struct RandomCase {
  Digit d;
  unsigned n;
  unsigned max_faults;
};

class RandomFaults : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomFaults, CycleIsHamiltonianOnComponent) {
  const auto [d, n, max_faults] = GetParam();
  const FfcSolver solver(DeBruijnDigraph(d, n));
  const WordSpace& ws = solver.graph().words();
  Rng rng(0x5eedULL + d * 100 + n);
  for (unsigned trial = 0; trial < 40; ++trial) {
    const unsigned f = 1 + static_cast<unsigned>(rng.below(max_faults));
    const auto faults = rng.sample_distinct(ws.size(), f);
    FfcResult result;
    try {
      result = solver.solve(faults);
    } catch (const precondition_error&) {
      // All nodes faulty (possible for tiny graphs with many faults).
      continue;
    }
    EXPECT_TRUE(is_cycle(ws, result.cycle));
    // H avoids every faulty necklace.
    const std::set<Word> bad(result.faulty_necklace_reps.begin(),
                             result.faulty_necklace_reps.end());
    for (Word v : result.cycle.nodes) {
      EXPECT_FALSE(bad.contains(ws.min_rotation(v)));
    }
    // H covers the whole component of the root.
    const auto active = solver.active_mask(faults);
    const auto comp = solver.component_of(active, result.root);
    std::uint64_t comp_size = 0;
    for (Word v = 0; v < ws.size(); ++v) comp_size += comp[v] ? 1 : 0;
    EXPECT_EQ(result.cycle.length(), comp_size);
    EXPECT_EQ(result.bstar_size, comp_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomFaults,
    ::testing::Values(RandomCase{2, 6, 8}, RandomCase{2, 10, 30},
                      RandomCase{3, 4, 10}, RandomCase{4, 4, 12},
                      RandomCase{4, 5, 40}, RandomCase{5, 3, 8},
                      RandomCase{6, 3, 10}, RandomCase{7, 2, 6}),
    [](const auto& pinfo) {
      return "B" + std::to_string(pinfo.param.d) + "_" +
             std::to_string(pinfo.param.n) + "_f" +
             std::to_string(pinfo.param.max_faults);
    });

// --------------------------------------------------------------------------
// Proposition 2.2: with f <= d-2 faults, |H| >= d^n - nf, eccentricity <= 2n,
// and the faulty graph minus necklaces stays connected (B* is everything).

class Prop22 : public ::testing::TestWithParam<std::pair<Digit, unsigned>> {};

TEST_P(Prop22, BoundsHold) {
  const auto [d, n] = GetParam();
  const FfcSolver solver(DeBruijnDigraph(d, n));
  const WordSpace& ws = solver.graph().words();
  Rng rng(0xfeedULL + d * 10 + n);
  for (unsigned trial = 0; trial < 60; ++trial) {
    const unsigned f = static_cast<unsigned>(rng.below(d - 1));  // f <= d-2
    const auto faults = rng.sample_distinct(ws.size(), f);
    const auto result = solver.solve(faults);
    EXPECT_GE(result.cycle.length(), ws.size() - n * f)
        << "d=" << unsigned(d) << " n=" << n << " f=" << f;
    EXPECT_LE(result.root_eccentricity, 2 * n);
    // B* holds every nonfaulty necklace: size == d^n - N_F.
    EXPECT_EQ(result.bstar_size, ws.size() - result.faulty_node_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Prop22,
    ::testing::Values(std::pair<Digit, unsigned>{3, 3}, std::pair<Digit, unsigned>{3, 5},
                      std::pair<Digit, unsigned>{4, 3}, std::pair<Digit, unsigned>{4, 5},
                      std::pair<Digit, unsigned>{5, 3}, std::pair<Digit, unsigned>{5, 4},
                      std::pair<Digit, unsigned>{6, 3}, std::pair<Digit, unsigned>{7, 3},
                      std::pair<Digit, unsigned>{8, 2}, std::pair<Digit, unsigned>{9, 2}),
    [](const auto& pinfo) {
      return "B" + std::to_string(pinfo.param.first) + "_" +
             std::to_string(pinfo.param.second);
    });

// --------------------------------------------------------------------------
// Proposition 2.3: a single fault in B(2,n) leaves a cycle of length at
// least 2^n - (n+1). Exhaustive over all single faults.

class Prop23 : public ::testing::TestWithParam<unsigned> {};

TEST_P(Prop23, SingleFaultBinaryBound) {
  const unsigned n = GetParam();
  const FfcSolver solver(DeBruijnDigraph(2, n));
  const WordSpace& ws = solver.graph().words();
  for (Word fault = 0; fault < ws.size(); ++fault) {
    const std::vector<Word> faults{fault};
    const auto result = solver.solve(faults);
    EXPECT_GE(result.cycle.length(), ws.size() - (n + 1))
        << "fault " << ws.to_string(fault);
    EXPECT_TRUE(is_cycle(ws, result.cycle));
  }
}

INSTANTIATE_TEST_SUITE_P(AllN, Prop23, ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& pinfo) {
                           return "n" + std::to_string(pinfo.param);
                         });

// --------------------------------------------------------------------------
// Worst-case optimality (Section 2.5): with the adversarial fault set
// F = {a^(n-1)(d-1) | 0 <= a <= f-1}, no fault-free cycle (necklace removal
// or not) exceeds d^n - nf; the FFC meets the bound exactly.

TEST(WorstCase, FfcMeetsBoundExactly) {
  for (Digit d : {3u, 4u, 5u}) {
    for (unsigned n : {2u, 3u}) {
      const FfcSolver solver(DeBruijnDigraph(d, n));
      const WordSpace& ws = solver.graph().words();
      for (unsigned f = 1; f <= d - 2; ++f) {
        std::vector<Word> faults;
        for (Digit a = 0; a < f; ++a) {
          Word x = ws.repeated(a);
          x = ws.with_digit(x, n - 1, d - 1);  // a...a(d-1)
          faults.push_back(x);
        }
        const auto result = solver.solve(faults);
        EXPECT_EQ(result.cycle.length(), ws.size() - n * f)
            << "d=" << d << " n=" << n << " f=" << f;
      }
    }
  }
}

TEST(WorstCase, BruteForceConfirmsOptimality) {
  // Exhaustive longest-cycle search over the graph with only the faulty
  // *nodes* removed (not whole necklaces): the optimum equals d^n - nf.
  struct Case {
    Digit d;
    unsigned n;
    unsigned f;
  };
  // B(5,2) with f=1 also passes (optimum 23 = 25 - 2) but its exhaustive
  // search takes ~30s, so it is left to the prop_2_bounds bench.
  for (const auto& c : {Case{3, 2, 1}, Case{4, 2, 1}, Case{4, 2, 2},
                        Case{5, 2, 3}, Case{3, 3, 1}}) {
    const DeBruijnDigraph g(c.d, c.n);
    const WordSpace& ws = g.words();
    std::vector<bool> active(ws.size(), true);
    for (Digit a = 0; a < c.f; ++a) {
      Word x = ws.repeated(a);
      x = ws.with_digit(x, c.n - 1, c.d - 1);
      active[x] = false;
    }
    const auto best = longest_cycle_bruteforce(g.materialize(), active);
    EXPECT_EQ(best, ws.size() - c.n * c.f)
        << "d=" << unsigned(c.d) << " n=" << c.n << " f=" << c.f;
  }
}

// --------------------------------------------------------------------------
// Root selection and component semantics.

TEST(Roots, ExplicitRootIsHonored) {
  const FfcSolver solver(DeBruijnDigraph(2, 5));
  const WordSpace& ws = solver.graph().words();
  // Fault of weight 1 disconnects 0^n from the rest (Proposition 2.3 proof).
  const Word w1 = word_of(ws, {0, 0, 0, 0, 1});
  FfcOptions opts;
  opts.root = word_of(ws, {0, 1, 1, 1, 1});
  const auto result = solver.solve(std::vector<Word>{w1}, opts);
  // Component excluding 0^n and the removed necklace: 32 - 5 - 1 = 26.
  EXPECT_EQ(result.cycle.length(), 26u);
  // 0^n alone forms the other component.
  const auto isolated = solver.component_of(solver.active_mask(std::vector<Word>{w1}), 0);
  std::uint64_t size = 0;
  for (Word v = 0; v < ws.size(); ++v) size += isolated[v] ? 1 : 0;
  EXPECT_EQ(size, 1u);
}

TEST(Roots, DefaultPicksLargestComponent) {
  const FfcSolver solver(DeBruijnDigraph(2, 5));
  const WordSpace& ws = solver.graph().words();
  const Word w1 = word_of(ws, {0, 0, 0, 0, 1});
  const auto result = solver.solve(std::vector<Word>{w1});
  EXPECT_EQ(result.cycle.length(), 26u);
  EXPECT_NE(result.root, 0u);  // 0^n is isolated, not in the largest component
}

TEST(Roots, FaultyRootRejected) {
  const FfcSolver solver(DeBruijnDigraph(3, 3));
  FfcOptions opts;
  opts.root = 0;
  EXPECT_THROW((void)solver.solve(std::vector<Word>{0}, opts), precondition_error);
}

TEST(Roots, AllNodesFaultyRejected) {
  const FfcSolver solver(DeBruijnDigraph(2, 2));
  std::vector<Word> everything{0, 1, 2, 3};
  EXPECT_THROW((void)solver.solve(everything), precondition_error);
}

TEST(Roots, NonCanonicalRootIsCanonicalized) {
  const FfcSolver solver(DeBruijnDigraph(3, 3));
  const WordSpace& ws = solver.graph().words();
  FfcOptions opts;
  opts.root = word_of(ws, {1, 0, 0});  // necklace rep is 001
  const auto result = solver.solve({}, opts);
  EXPECT_EQ(result.root, word_of(ws, {0, 0, 1}));
}

// --------------------------------------------------------------------------
// Structural invariants of the intermediate objects over random instances.

TEST(TreeStructure, TreeSpansComponentNecklaces) {
  const FfcSolver solver(DeBruijnDigraph(4, 4));
  const WordSpace& ws = solver.graph().words();
  Rng rng(77);
  for (unsigned trial = 0; trial < 20; ++trial) {
    const auto faults = rng.sample_distinct(ws.size(), 1 + rng.below(6));
    const auto result = solver.solve(faults);
    // Each non-root necklace appears exactly once as a tree child.
    std::map<Word, int> child_count;
    for (const auto& e : result.tree_edges) ++child_count[e.to];
    EXPECT_EQ(child_count.size() + 1, result.necklace_count);
    for (const auto& [rep, count] : child_count) {
      EXPECT_EQ(count, 1);
      EXPECT_NE(rep, result.root);
    }
    // D has exactly one outgoing and one incoming w-edge per (member, label).
    std::set<std::pair<Word, Word>> out_slots, in_slots;
    for (const auto& e : result.modified_edges) {
      EXPECT_TRUE(out_slots.insert({e.from, e.label}).second);
      EXPECT_TRUE(in_slots.insert({e.to, e.label}).second);
    }
    EXPECT_EQ(result.modified_edges.size(),
              result.tree_edges.size() + /* label classes */
                  [&] {
                    std::set<Word> labels;
                    for (const auto& e : result.tree_edges) labels.insert(e.label);
                    return labels.size();
                  }());
  }
}

// --------------------------------------------------------------------------
// Context-backed solver parity: the ctx path serves necklace representatives
// straight from InstanceContext::necklaces() (no O(d^n) min-rotation rescan);
// its adjacency output must stay byte-equal to the legacy scan's.

TEST(ContextBackedSolver, NecklaceAdjacencyMatchesLegacyScan) {
  for (const auto& [base, n] : {std::pair<Digit, unsigned>{2, 7},
                                {3, 4},
                                {4, 3}}) {
    const InstanceContext ctx(base, n);
    const FfcSolver legacy((DeBruijnDigraph(base, n)));
    const FfcSolver backed(ctx);
    const WordSpace& ws = ctx.words();
    Rng rng(20260808u + base * 100 + n);
    for (unsigned trial = 0; trial < 10; ++trial) {
      const auto faults = rng.sample_distinct(ws.size(), rng.below(4));
      const auto active = legacy.active_mask(faults);
      const NecklaceAdjacency want = legacy.necklace_adjacency(active);
      const NecklaceAdjacency got = backed.necklace_adjacency(active);
      ASSERT_EQ(got.reps, want.reps)
          << "B(" << base << "," << n << ") trial " << trial;
      ASSERT_EQ(got.edges, want.edges)
          << "B(" << base << "," << n << ") trial " << trial;
    }
    // Component masks (not just whole-necklace fault masks) go through the
    // same filter: any mask closed under rotation agrees with the scan.
    const auto active = legacy.active_mask(std::vector<Word>{1});
    const auto comp = legacy.component_of(active, 0);
    const NecklaceAdjacency want = legacy.necklace_adjacency(comp);
    const NecklaceAdjacency got = backed.necklace_adjacency(comp);
    EXPECT_EQ(got.reps, want.reps);
    EXPECT_EQ(got.edges, want.edges);
  }
}

}  // namespace
}  // namespace dbr::core
