#include "core/edge_fault.hpp"

#include <gtest/gtest.h>

#include "core/disjoint_hc.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr::core {
namespace {

// Random distinct non-loop edge words of B(d,n).
std::vector<Word> random_edge_faults(const WordSpace& ws, unsigned count, Rng& rng) {
  std::vector<Word> out;
  while (out.size() < count) {
    const Word e = rng.below(ws.edge_word_count());
    const auto [u, v] = ws.edge_endpoints(e);
    if (u == v) continue;  // skip loops: no HC uses them anyway
    if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
  }
  return out;
}

struct Case {
  std::uint64_t d;
  unsigned n;
};

class EdgeFaultSweep : public ::testing::TestWithParam<Case> {};

TEST_P(EdgeFaultSweep, ToleratesMaxFaultsRandomly) {
  const auto [d, n] = GetParam();
  const WordSpace ws(static_cast<Digit>(d), n);
  const unsigned budget = static_cast<unsigned>(max_tolerable_edge_faults(d));
  Rng rng(0xedfeULL + d * 31 + n);
  for (unsigned trial = 0; trial < 25; ++trial) {
    const unsigned f = static_cast<unsigned>(rng.below(budget + 1));
    const auto faults = random_edge_faults(ws, f, rng);
    const auto hc = fault_free_hamiltonian_cycle(d, n, faults);
    ASSERT_TRUE(hc.has_value()) << "d=" << d << " n=" << n << " f=" << f;
    EXPECT_TRUE(is_hamiltonian(ws, *hc));
    EXPECT_TRUE(avoids_edges(ws, *hc, faults));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgeFaultSweep,
    ::testing::Values(Case{3, 2}, Case{3, 4}, Case{4, 2}, Case{4, 3}, Case{5, 2},
                      Case{5, 3}, Case{7, 2}, Case{8, 2}, Case{9, 2}, Case{6, 2},
                      Case{6, 3}, Case{10, 2}, Case{12, 2}, Case{15, 2}, Case{13, 2}),
    [](const auto& pinfo) {
      std::string name = "B";
      name += std::to_string(pinfo.param.d);
      name += '_';
      name += std::to_string(pinfo.param.n);
      return name;
    });

TEST(EdgeFault, AdversarialFaultsOnOneShiftedCycle) {
  // Put all faults on edges of a single s + C (the adversary kills one
  // shifted cycle as thoroughly as the budget allows); the construction
  // must pick another shift.
  const std::uint64_t d = 7;
  const unsigned n = 3;
  const WordSpace ws(7, 3);
  const gf::Field field(7);
  const MaximalCycleFamily family(field, n);
  const auto target_edges = edge_words(ws, family.shifted_cycle(2));
  const std::vector<Word> faults(target_edges.begin(), target_edges.begin() + 5);
  const auto hc = fault_free_hamiltonian_cycle(d, n, faults);
  ASSERT_TRUE(hc.has_value());
  EXPECT_TRUE(is_hamiltonian(ws, *hc));
  EXPECT_TRUE(avoids_edges(ws, *hc, faults));
}

TEST(EdgeFault, AdversarialFaultsAtOneNode) {
  // Section 3.3: removing the d-1 non-loop edges into 0...0 makes B(d,n)
  // non-Hamiltonian, hence the budget d-2 for prime powers. Check that at
  // exactly d-2 in-edges killed we still succeed (the surviving in-edge
  // carries the cycle), for prime-power d.
  for (std::uint64_t d : {3ull, 5ull, 7ull, 9ull}) {
    const unsigned n = 2;
    const WordSpace ws(static_cast<Digit>(d), n);
    std::vector<Word> faults;
    // in-edges of 0^n: a 0^(n-1) -> 0^n, edge word a 0^n; skip the loop (a=0).
    for (Digit a = 1; a + 1 < d; ++a) {
      faults.push_back(static_cast<Word>(a) * ws.size());  // (n+1)-word a 0^n
    }
    const auto hc = fault_free_hamiltonian_cycle(d, n, faults);
    ASSERT_TRUE(hc.has_value()) << d;
    EXPECT_TRUE(is_hamiltonian(ws, *hc));
    EXPECT_TRUE(avoids_edges(ws, *hc, faults));
  }
}

TEST(EdgeFault, AllInEdgesKilledIsInfeasible) {
  // With all d-1 non-loop in-edges of 0^n faulty no Hamiltonian cycle
  // exists; both constructions must give up rather than cheat.
  const std::uint64_t d = 4;
  const unsigned n = 2;
  const WordSpace ws(4, 2);
  std::vector<Word> faults;
  for (Digit a = 1; a < d; ++a) {
    faults.push_back(static_cast<Word>(a) * ws.size() + 0);  // a00 edge word
  }
  const auto hc = fault_free_hamiltonian_cycle(d, n, faults);
  EXPECT_FALSE(hc.has_value());
}

TEST(EdgeFault, LoopFaultsAreFree) {
  // Loop edges never appear in Hamiltonian cycles; a pile of faulty loops
  // on top of the regular budget must not hurt.
  const std::uint64_t d = 5;
  const unsigned n = 3;
  const WordSpace ws(5, 3);
  Rng rng(99);
  std::vector<Word> faults = random_edge_faults(ws, 3, rng);  // phi(5) = 3
  for (Digit a = 0; a < d; ++a) {
    const Word loop_node = ws.repeated(a);
    faults.push_back(ws.edge_word(loop_node, a));
  }
  const auto hc = fault_free_hamiltonian_cycle(d, n, faults);
  ASSERT_TRUE(hc.has_value());
  EXPECT_TRUE(is_hamiltonian(ws, *hc));
  EXPECT_TRUE(avoids_edges(ws, *hc, faults));
}

TEST(EdgeFault, PhiConstructionAloneMeetsItsBound) {
  for (const Case c : {Case{4, 2}, Case{5, 2}, Case{6, 2}, Case{9, 2}, Case{12, 2}}) {
    const WordSpace ws(static_cast<Digit>(c.d), c.n);
    Rng rng(0x11ULL * c.d + c.n);
    const unsigned budget = static_cast<unsigned>(phi_edge_bound(c.d));
    for (unsigned trial = 0; trial < 15; ++trial) {
      const auto faults =
          random_edge_faults(ws, static_cast<unsigned>(rng.below(budget + 1)), rng);
      const auto hc = fault_free_hc_phi_construction(c.d, c.n, faults);
      ASSERT_TRUE(hc.has_value()) << "d=" << c.d;
      EXPECT_TRUE(is_hamiltonian(ws, *hc));
      EXPECT_TRUE(avoids_edges(ws, *hc, faults));
    }
  }
}

TEST(EdgeFault, FamilyScanAloneMeetsItsBound) {
  for (const Case c : {Case{4, 2}, Case{8, 2}, Case{13, 2}, Case{16, 2}}) {
    const WordSpace ws(static_cast<Digit>(c.d), c.n);
    Rng rng(0x22ULL * c.d + c.n);
    const unsigned budget = static_cast<unsigned>(psi(c.d) - 1);
    for (unsigned trial = 0; trial < 10; ++trial) {
      const auto faults =
          random_edge_faults(ws, static_cast<unsigned>(rng.below(budget + 1)), rng);
      const auto hc = fault_free_hc_family_scan(c.d, c.n, faults);
      ASSERT_TRUE(hc.has_value()) << "d=" << c.d;
      EXPECT_TRUE(is_hamiltonian(ws, *hc));
      EXPECT_TRUE(avoids_edges(ws, *hc, faults));
    }
  }
}

TEST(EdgeFault, D28PsiBeatsPhi) {
  // The Table 3.2 exception: at d = 28 the disjoint family tolerates 8
  // faults while the phi construction only promises 7.
  EXPECT_EQ(psi(28) - 1, 8u);
  EXPECT_EQ(phi_edge_bound(28), 7u);
  EXPECT_EQ(max_tolerable_edge_faults(28), 8u);
}

TEST(EdgeFault, Preconditions) {
  EXPECT_THROW((void)fault_free_hamiltonian_cycle(1, 2, {}), precondition_error);
  EXPECT_THROW((void)fault_free_hamiltonian_cycle(4, 1, {}), precondition_error);
  const std::vector<Word> bogus{1ull << 60};
  EXPECT_THROW((void)fault_free_hamiltonian_cycle(2, 3, bogus), precondition_error);
}

}  // namespace
}  // namespace dbr::core
