#include "core/mod_debruijn.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "debruijn/debruijn.hpp"
#include "util/require.hpp"

namespace dbr::core {
namespace {

using EdgePair = std::pair<Word, Word>;

std::set<EdgePair> cycle_edges(const NodeCycle& c) {
  std::set<EdgePair> out;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    out.insert({c.nodes[i], c.nodes[(i + 1) % c.nodes.size()]});
  }
  return out;
}

class Decomposition : public ::testing::TestWithParam<std::pair<Digit, unsigned>> {
 protected:
  void verify(const ModifiedDeBruijn& mb) {
    const Digit d = mb.radix;
    const unsigned n = mb.tuple_length;
    const WordSpace ws(d, n);
    const DeBruijnDigraph g(d, n);

    // (1) d Hamiltonian cycles (as node sequences over all d^n nodes).
    ASSERT_EQ(mb.cycles.size(), d);
    for (const NodeCycle& c : mb.cycles) {
      ASSERT_EQ(c.nodes.size(), ws.size());
      std::set<Word> distinct(c.nodes.begin(), c.nodes.end());
      EXPECT_EQ(distinct.size(), ws.size());
    }

    // (2) the union of the cycles carries d * d^n edge slots. For n >= 3
    // MB(d,n) is a simple graph and the cycles are set-edge-disjoint; for
    // n = 2 a rerouted edge may duplicate an existing De Bruijn edge (the
    // paper's multigraph footnote), so multiset semantics apply.
    std::multiset<EdgePair> all_edges;
    for (const NodeCycle& c : mb.cycles) {
      for (const EdgePair& e : cycle_edges(c)) {
        if (n >= 3) {
          EXPECT_FALSE(all_edges.contains(e))
              << "edge reused across cycles: " << ws.to_string(e.first) << "->"
              << ws.to_string(e.second);
        }
        all_edges.insert(e);
      }
    }
    EXPECT_EQ(all_edges.size(), static_cast<std::uint64_t>(d) * ws.size());

    // (3) every node has in/out degree d in MB(d,n) (multiplicity counted).
    std::map<Word, unsigned> outdeg, indeg;
    for (const EdgePair& e : all_edges) {
      ++outdeg[e.first];
      ++indeg[e.second];
    }
    for (Word v = 0; v < ws.size(); ++v) {
      EXPECT_EQ(outdeg[v], d);
      EXPECT_EQ(indeg[v], d);
    }

    // (4) removed edges are non-loop De Bruijn edges absent from MB; added
    // edges are present. For n >= 3 the added edges are genuinely new and
    // the edge sets reconcile exactly; for n = 2 an added edge may coincide
    // with an existing De Bruijn edge (the paper's footnote: UMB(d,2) is a
    // multigraph), so only the weaker containment is checked.
    for (const EdgePair& e : mb.added_edges) {
      EXPECT_TRUE(all_edges.contains(e));
      if (n >= 3) {
        EXPECT_FALSE(g.has_edge(e.first, e.second) && e.first != e.second)
            << "added edge already in B(d,n)";
      }
    }
    for (const EdgePair& e : mb.removed_edges) {
      EXPECT_TRUE(g.has_edge(e.first, e.second));
      EXPECT_NE(e.first, e.second) << "only non-loop p-edges are removed";
      EXPECT_FALSE(all_edges.contains(e));
    }
    if (n >= 3) {
      std::uint64_t debruijn_nonloop_in_mb = 0;
      for (Word u = 0; u < ws.size(); ++u) {
        for (Digit a = 0; a < d; ++a) {
          const Word v = ws.shift_append(u, a);
          if (u == v) continue;
          if (all_edges.contains({u, v})) ++debruijn_nonloop_in_mb;
        }
      }
      EXPECT_EQ(debruijn_nonloop_in_mb + mb.removed_edges.size(),
                g.num_nonloop_edges());
    }

    // (5) UMB contains UB: every undirected De Bruijn edge survives in at
    // least one direction (at most one edge of each antiparallel pair was
    // rerouted, Section 3.2.3).
    const UndirectedDeBruijn ub(d, n);
    for (Word v = 0; v < ws.size(); ++v) {
      for (Word w : ub.neighbors(v)) {
        EXPECT_TRUE(all_edges.contains({v, w}) || all_edges.contains({w, v}))
            << "UB edge lost: " << ws.to_string(v) << " -- " << ws.to_string(w);
      }
    }
  }
};

TEST_P(Decomposition, SatisfiesAllStructuralClaims) {
  const auto [d, n] = GetParam();
  verify(modified_debruijn_decomposition(d, n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Decomposition,
    ::testing::Values(std::pair<Digit, unsigned>{2, 3}, std::pair<Digit, unsigned>{2, 4},
                      std::pair<Digit, unsigned>{2, 6}, std::pair<Digit, unsigned>{3, 2},
                      std::pair<Digit, unsigned>{3, 3}, std::pair<Digit, unsigned>{3, 4},
                      std::pair<Digit, unsigned>{5, 2}, std::pair<Digit, unsigned>{5, 3},
                      std::pair<Digit, unsigned>{7, 2}, std::pair<Digit, unsigned>{9, 2},
                      std::pair<Digit, unsigned>{9, 3}, std::pair<Digit, unsigned>{2, 7}),
    [](const auto& pinfo) {
      return "MB" + std::to_string(pinfo.param.first) + "_" +
             std::to_string(pinfo.param.second);
    });

TEST(Example36, BinaryN3MatchesConstruction) {
  // Example 3.6: C = [0,0,1,1,1,0,1] (c_{i+3} = c_{i+2} + c_i); C gains 000
  // between 100 and 001; in 1+C node 000 is dropped and the p-edge
  // (010, 101) is rerouted 010 -> 000 -> 111 -> 101 (Figure 3.3).
  const auto mb = modified_debruijn_decomposition(2, 3);
  ASSERT_EQ(mb.cycles.size(), 2u);
  const WordSpace ws(2, 3);
  // One cycle is the extended C (all De Bruijn edges); the other carries the
  // three new edges.
  ASSERT_EQ(mb.added_edges.size(), 3u);
  ASSERT_EQ(mb.removed_edges.size(), 1u);
  const auto [pu, pv] = mb.removed_edges[0];
  // The rerouted p-edge joins the two alternating nodes 010 and 101.
  const std::set<Word> alt{ws.alternating(0, 1), ws.alternating(1, 0)};
  EXPECT_TRUE(alt.contains(pu));
  EXPECT_TRUE(alt.contains(pv));
  EXPECT_NE(pu, pv);
  // The reroute path visits both constant nodes consecutively.
  const Word zeros = 0, ones = 7;
  std::set<EdgePair> added(mb.added_edges.begin(), mb.added_edges.end());
  EXPECT_TRUE(added.contains({zeros, ones}) || added.contains({ones, zeros}));
}

TEST(ModifiedDeBruijnApi, RejectsUnsupportedRadix) {
  EXPECT_THROW(modified_debruijn_decomposition(2, 2), precondition_error);  // n >= 3
  EXPECT_THROW(modified_debruijn_decomposition(4, 3), precondition_error);  // even, != 2
  EXPECT_THROW(modified_debruijn_decomposition(6, 3), precondition_error);  // composite
  EXPECT_THROW(modified_debruijn_decomposition(3, 1), precondition_error);  // n >= 2
}

}  // namespace
}  // namespace dbr::core
