#include "core/distributed_ffc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/ffc.hpp"
#include "debruijn/cycle.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr::core {
namespace {

// --------------------------------------------------------------------------
// Agreement with the centralized solver: identical H for identical root.

struct AgreeCase {
  Digit d;
  unsigned n;
  unsigned max_faults;
};

class AgreesWithCentralized : public ::testing::TestWithParam<AgreeCase> {};

TEST_P(AgreesWithCentralized, IdenticalCycles) {
  const auto [d, n, max_faults] = GetParam();
  const DeBruijnDigraph graph(d, n);
  const FfcSolver central(graph);
  const DistributedFfcSolver dist(graph);
  const WordSpace& ws = graph.words();
  Rng rng(0xd15cULL + d * 37 + n);
  for (unsigned trial = 0; trial < 25; ++trial) {
    const unsigned f = static_cast<unsigned>(rng.below(max_faults + 1));
    const auto faults = rng.sample_distinct(ws.size(), f);
    Word root;
    try {
      root = dist.default_root(faults);
    } catch (const precondition_error&) {
      continue;  // everything reachable from 0..01 is faulty
    }
    FfcOptions opts;
    opts.root = root;
    const auto want = central.solve(faults, opts);
    const auto got = dist.run(faults, root);
    EXPECT_EQ(got.root, want.root);
    EXPECT_EQ(got.cycle, want.cycle) << "trial " << trial << " f=" << f;
    EXPECT_EQ(got.bstar_size, want.bstar_size);
    EXPECT_EQ(got.root_eccentricity, want.root_eccentricity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AgreesWithCentralized,
    ::testing::Values(AgreeCase{2, 5, 4}, AgreeCase{2, 8, 12}, AgreeCase{3, 3, 4},
                      AgreeCase{3, 4, 8}, AgreeCase{4, 3, 6}, AgreeCase{4, 4, 16},
                      AgreeCase{5, 3, 10}, AgreeCase{6, 2, 6}, AgreeCase{7, 2, 6},
                      AgreeCase{2, 10, 30}),
    [](const auto& pinfo) {
      return "B" + std::to_string(pinfo.param.d) + "_" + std::to_string(pinfo.param.n);
    });

// --------------------------------------------------------------------------
// Example 2.1 through the network protocol.

TEST(DistributedExample21, ReproducesPaperCycle) {
  const DeBruijnDigraph graph(3, 3);
  const DistributedFfcSolver solver(graph);
  const WordSpace& ws = graph.words();
  const std::vector<Word> faults{ws.from_digits(std::vector<Digit>{0, 2, 0}),
                                 ws.from_digits(std::vector<Digit>{1, 1, 2})};
  const auto result = solver.run(faults, 0);
  EXPECT_EQ(result.bstar_size, 21u);
  EXPECT_TRUE(is_cycle(ws, result.cycle));
  const FfcSolver central(graph);
  FfcOptions opts;
  opts.root = 0;
  EXPECT_EQ(result.cycle, central.solve(faults, opts).cycle);
}

// --------------------------------------------------------------------------
// Round complexity: O(K + n) communication steps (Section 2.4).

TEST(RoundComplexity, ProbeDossierRerouteAreThetaN) {
  for (unsigned n : {4u, 6u, 8u, 10u}) {
    const DistributedFfcSolver solver(DeBruijnDigraph(2, n));
    const auto result = solver.run({}, 1);
    EXPECT_EQ(result.stats.probe_rounds, n);
    EXPECT_LE(result.stats.dossier_rounds, n);
    EXPECT_LE(result.stats.reroute_rounds, n);
    EXPECT_EQ(result.stats.announce_rounds, 1u);
  }
}

TEST(RoundComplexity, BroadcastIsEccentricityPlusOne) {
  const DeBruijnDigraph graph(3, 4);
  const DistributedFfcSolver solver(graph);
  Rng rng(0xbeefULL);
  for (unsigned trial = 0; trial < 10; ++trial) {
    const auto faults = rng.sample_distinct(graph.num_nodes(), rng.below(4));
    Word root;
    try {
      root = solver.default_root(faults);
    } catch (const precondition_error&) {
      continue;
    }
    const auto result = solver.run(faults, root);
    EXPECT_EQ(result.stats.broadcast_rounds, result.root_eccentricity + 1);
  }
}

TEST(RoundComplexity, TotalWithinLinearBudget) {
  // Total rounds <= K + 3n + 2 by construction; check the end-to-end figure
  // against the paper's O(K + n) claim on a spread of sizes.
  for (auto [d, n] : {std::pair<Digit, unsigned>{2, 10}, {3, 5}, {4, 4}, {5, 3}}) {
    const DistributedFfcSolver solver(DeBruijnDigraph(d, n));
    const auto result = solver.run({}, 1);
    EXPECT_LE(result.stats.total_rounds(),
              static_cast<std::uint64_t>(result.root_eccentricity) + 3 * n + 2);
  }
}

// --------------------------------------------------------------------------
// The pure Section-2.4 cost model (predict_rebuild_rounds) against the
// measured protocol accounting: the fabric prices every shard-remap rebuild
// with this estimator, so it must dominate the measured run phase by phase
// and be exact where the phase count is deterministic.

TEST(RebuildEstimator, MatchesMeasuredRunOnSeededFaults) {
  Rng rng(0x5ec24ULL);
  for (auto [d, n] : {std::pair<Digit, unsigned>{2, 8}, {2, 10}, {3, 4},
                      {4, 3}, {5, 3}}) {
    const DeBruijnDigraph graph(d, n);
    const DistributedFfcSolver solver(graph);
    for (unsigned trial = 0; trial < 8; ++trial) {
      const auto faults = rng.sample_distinct(graph.num_nodes(), rng.below(4));
      Word root;
      try {
        root = solver.default_root(faults);
      } catch (const precondition_error&) {
        continue;
      }
      const auto result = solver.run(faults, root);
      // Diameter-default estimate (eccentricity unknown): probe and
      // announce are exact, dossier / reroute / messages are upper bounds.
      // Broadcast's n + 1 default is NOT a bound once necklaces are
      // withdrawn (B*'s eccentricity can exceed n), so it is only checked
      // with the measured eccentricity supplied, where it must be exact.
      const DistributedFfcStats bound = predict_rebuild_rounds(d, n);
      EXPECT_EQ(bound.probe_rounds, result.stats.probe_rounds);
      EXPECT_EQ(bound.announce_rounds, result.stats.announce_rounds);
      EXPECT_GE(bound.dossier_rounds, result.stats.dossier_rounds);
      EXPECT_GE(bound.reroute_rounds, result.stats.reroute_rounds);
      EXPECT_GE(bound.messages, result.stats.messages);
      const DistributedFfcStats exact =
          predict_rebuild_rounds(d, n, result.root_eccentricity);
      EXPECT_EQ(exact.broadcast_rounds, result.stats.broadcast_rounds);
      if (faults.empty()) {
        EXPECT_EQ(bound.broadcast_rounds, result.stats.broadcast_rounds);
      }
    }
  }
}

TEST(RebuildEstimator, PhaseShapeIsThetaN) {
  // The estimator inherits the paper's per-phase shape: probe/dossier/
  // reroute grow linearly in n, broadcast defaults to the diameter bound
  // n + 1, announce is one round.
  for (unsigned n : {4u, 8u, 12u}) {
    const DistributedFfcStats est = predict_rebuild_rounds(2, n);
    EXPECT_EQ(est.probe_rounds, n);
    EXPECT_EQ(est.dossier_rounds, n - 1);
    EXPECT_EQ(est.reroute_rounds, n);
    EXPECT_EQ(est.broadcast_rounds, n + 1);
    EXPECT_EQ(est.announce_rounds, 1u);
    EXPECT_EQ(est.total_rounds(), 4ull * n + 1);
  }
  EXPECT_THROW(predict_rebuild_rounds(1, 3), precondition_error);
}

// --------------------------------------------------------------------------
// Fault discovery: the protocol receives no fault locations, only dead nodes.

TEST(FaultDiscovery, WithdrawnNecklacesAreExcluded) {
  const DeBruijnDigraph graph(4, 3);
  const DistributedFfcSolver solver(graph);
  const WordSpace& ws = graph.words();
  const std::vector<Word> faults{ws.from_digits(std::vector<Digit>{1, 2, 3})};
  const auto result = solver.run(faults, solver.default_root(faults));
  const std::set<Word> cycle_nodes(result.cycle.nodes.begin(), result.cycle.nodes.end());
  // The whole necklace of 123 is out, including the two nonfaulty members.
  for (Word v : necklace_nodes(ws, faults[0])) {
    EXPECT_FALSE(cycle_nodes.contains(v));
  }
  EXPECT_EQ(result.bstar_size, graph.num_nodes() - 3);
}

TEST(FaultDiscovery, RootOnFaultyNecklaceRejected) {
  const DistributedFfcSolver solver(DeBruijnDigraph(3, 3));
  EXPECT_THROW((void)solver.run(std::vector<Word>{1}, 1), precondition_error);
}

TEST(DefaultRoot, PrefersCanonical001) {
  const DistributedFfcSolver solver(DeBruijnDigraph(2, 6));
  EXPECT_EQ(solver.default_root({}), 1u);  // 000001
}

TEST(DefaultRoot, FallsBackToNeighbor) {
  const DeBruijnDigraph graph(2, 6);
  const DistributedFfcSolver solver(graph);
  // Kill the necklace of 0...01.
  const std::vector<Word> faults{1};
  const Word root = solver.default_root(faults);
  EXPECT_NE(root, 1u);
  const WordSpace& ws = graph.words();
  EXPECT_NE(ws.min_rotation(root), ws.min_rotation(1));
  // And the protocol runs fine from there.
  const auto result = solver.run(faults, root);
  EXPECT_TRUE(is_cycle(ws, result.cycle));
}

// --------------------------------------------------------------------------
// Message accounting sanity: traffic stays polynomial (no broadcast storms).

TEST(Traffic, MessageCountIsModest) {
  const DeBruijnDigraph graph(2, 10);
  const DistributedFfcSolver solver(graph);
  const auto result = solver.run({}, 1);
  // Probe: ~n per node; flood: d per node; dossier: <= n per node;
  // announce/reroute: O(n) per necklace. Generous envelope: 4n*d^n.
  EXPECT_LE(result.stats.messages, 4ull * 10 * 1024 * 2);
  EXPECT_GT(result.stats.messages, graph.num_nodes());
}

}  // namespace
}  // namespace dbr::core
