#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "core/instance_context.hpp"
#include "core/mixed_fault.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"
#include "sim/session_driver.hpp"
#include "util/require.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

// The mixed node+edge fault pipeline: the core solver's two routes, the
// heterogeneous FaultSet canonicalization (mixed-kind ordering, duplicate
// node+incident-edge collapse, cache-key stability), the engine dispatch,
// the oracle's independently derived combined budget, the three mixed
// scenario regimes, session-vs-stateless equivalence under mixed churn,
// and the sim driver's kill + link-cut bridge.

namespace dbr {
namespace {

using service::CacheKey;
using service::EmbedEngine;
using service::EmbedRequest;
using service::EmbedResponse;
using service::EmbedSession;
using service::EmbedStatus;
using service::EngineOptions;
using service::FaultKind;
using service::FaultSet;
using service::FaultSpec;
using service::Strategy;

EmbedRequest mixed_request(Digit base, unsigned n, std::vector<Word> nodes,
                           std::vector<Word> edges) {
  EmbedRequest req;
  req.base = base;
  req.n = n;
  req.fault_kind = FaultKind::kMixed;
  req.faults = std::move(nodes);
  req.edge_faults = std::move(edges);
  req.strategy = Strategy::kMixed;
  return req;
}

/// Edge words traversed by a node ring, wrap included.
std::set<Word> ring_edge_words(const WordSpace& ws, const NodeCycle& ring) {
  std::set<Word> out;
  for (std::size_t i = 0; i < ring.nodes.size(); ++i) {
    const Word u = ring.nodes[i];
    const Word v = ring.nodes[(i + 1) % ring.nodes.size()];
    out.insert(ws.edge_word(u, ws.tail(v)));
  }
  return out;
}

// --- core::solve_mixed -----------------------------------------------------

TEST(MixedFaultCore, NodeOnlySetMatchesFfc) {
  const auto ctx = core::InstanceContext::make(2, 6);
  const std::vector<Word> nodes = {5, 17, 40};
  const core::MixedResult mixed = core::solve_mixed(*ctx, nodes, {});
  ASSERT_TRUE(mixed.cycle.has_value());
  EXPECT_EQ(mixed.route, core::MixedRoute::kFfcPullback);
  EXPECT_EQ(mixed.pullback_node_faults, nodes.size());
  EXPECT_TRUE(mixed.pulled_back.empty());
  const core::FfcResult ffc = core::solve_ffc(*ctx, nodes);
  EXPECT_EQ(mixed.cycle->nodes, ffc.cycle.nodes);
}

TEST(MixedFaultCore, EdgeOnlySetWithinBudgetIsHamiltonian) {
  const auto ctx = core::InstanceContext::make(3, 3);  // phi(3) = 1 edge budget
  const std::vector<Word> edges = {7};
  const core::MixedResult mixed = core::solve_mixed(*ctx, {}, edges);
  ASSERT_TRUE(mixed.cycle.has_value());
  EXPECT_EQ(mixed.route, core::MixedRoute::kHamiltonian);
  EXPECT_EQ(mixed.cycle->length(), ctx->words().size());
  EXPECT_FALSE(ring_edge_words(ctx->words(), *mixed.cycle).contains(7u));
}

TEST(MixedFaultCore, MixedSetAvoidsBothKinds) {
  const auto ctx = core::InstanceContext::make(4, 4);
  const WordSpace& ws = ctx->words();
  const std::vector<Word> nodes = {100};
  const std::vector<Word> edges = {33, 700};
  const core::MixedResult mixed = core::solve_mixed(*ctx, nodes, edges);
  ASSERT_TRUE(mixed.cycle.has_value());
  EXPECT_EQ(mixed.route, core::MixedRoute::kFfcPullback);
  for (Word v : mixed.cycle->nodes) EXPECT_NE(v, 100u);
  const std::set<Word> used = ring_edge_words(ws, *mixed.cycle);
  EXPECT_FALSE(used.contains(33u));
  EXPECT_FALSE(used.contains(700u));
  // Each undominated non-loop edge charges exactly one pulled-back endpoint.
  EXPECT_EQ(mixed.pullback_node_faults, nodes.size() + mixed.pulled_back.size());
  EXPECT_LE(mixed.pulled_back.size(),
            core::countable_mixed_edge_faults(ws, nodes, edges));
}

TEST(MixedFaultCore, EdgeOnlyBeyondBudgetDegradesToPullback) {
  // d = 2: the Proposition 3.4 budget is 0, so any non-loop edge fault that
  // defeats both Section 3.3 constructions must still get a (shorter) ring
  // via the pull-back. Scan edges until one defeats the Hamiltonian route.
  const auto ctx = core::InstanceContext::make(2, 5);
  const WordSpace& ws = ctx->words();
  bool exercised = false;
  for (Word e = 0; e < ws.edge_word_count(); ++e) {
    const std::vector<Word> edges = {e};
    if (core::solve_edge_auto(*ctx, edges).has_value()) continue;
    const core::MixedResult mixed = core::solve_mixed(*ctx, {}, edges);
    ASSERT_TRUE(mixed.cycle.has_value()) << "edge word " << e;
    EXPECT_EQ(mixed.route, core::MixedRoute::kFfcPullback);
    EXPECT_LT(mixed.cycle->length(), ws.size());
    EXPECT_FALSE(ring_edge_words(ws, *mixed.cycle).contains(e));
    exercised = true;
    break;
  }
  EXPECT_TRUE(exercised)
      << "no single edge fault defeated the edge route in B(2,5)";
}

TEST(MixedFaultCore, DominatedEdgesChargeNothing) {
  const auto ctx = core::InstanceContext::make(3, 4);
  const WordSpace& ws = ctx->words();
  const Word u = 10;
  std::vector<Word> incident;
  for (Digit a = 0; a < 3; ++a) {
    incident.push_back(ws.edge_word(u, a));
    incident.push_back(ws.edge_word(ws.shift_prepend(u, a), ws.tail(u)));
  }
  const std::vector<Word> just_u = {u};
  EXPECT_EQ(core::countable_mixed_edge_faults(ws, just_u, incident), 0u);
  const core::MixedResult mixed = core::solve_mixed(*ctx, just_u, incident);
  ASSERT_TRUE(mixed.cycle.has_value());
  EXPECT_TRUE(mixed.pulled_back.empty());  // all edges dominated by u
  const core::MixedResult node_only = core::solve_mixed(*ctx, just_u, {});
  EXPECT_EQ(mixed.cycle->nodes, node_only.cycle->nodes);
}

TEST(MixedFaultCore, LoopEdgeFaultsAreHarmless) {
  const auto ctx = core::InstanceContext::make(2, 4);
  const WordSpace& ws = ctx->words();
  // Loop words 0^5 and 1^5 charge nothing and change nothing.
  const std::vector<Word> loops = {0, ws.edge_word_count() - 1};
  const std::vector<Word> node3 = {3};
  EXPECT_EQ(core::countable_mixed_edge_faults(ws, {}, loops), 0u);
  const core::MixedResult mixed = core::solve_mixed(*ctx, node3, loops);
  ASSERT_TRUE(mixed.cycle.has_value());
  const core::MixedResult bare = core::solve_mixed(*ctx, node3, {});
  EXPECT_EQ(mixed.cycle->nodes, bare.cycle->nodes);
}

TEST(MixedFaultCore, BoundsAgreeWithOracleEnvelope) {
  // The solver's claimed envelope and the oracle's independently derived
  // one must be the same function.
  for (Digit d : {2u, 3u, 4u, 5u, 6u}) {
    for (unsigned n : {2u, 3u, 4u}) {
      for (std::uint64_t nodes = 0; nodes <= 4; ++nodes) {
        for (std::uint64_t edges = 0; edges <= 4; ++edges) {
          const auto core_bounds =
              core::mixed_ring_length_bounds(d, n, nodes, edges);
          const auto oracle_bounds =
              verify::mixed_ring_length_envelope(d, n, nodes, edges);
          EXPECT_EQ(core_bounds, oracle_bounds)
              << "d=" << d << " n=" << n << " nodes=" << nodes
              << " edges=" << edges;
        }
      }
    }
  }
}

TEST(MixedFaultCore, CoveringNodeFaultsAreRejected) {
  const auto ctx = core::InstanceContext::make(2, 2);
  // Necklaces of {00, 01, 11} cover all of B(2,2).
  const std::vector<Word> covering = {0, 1, 3};
  EXPECT_THROW(core::solve_mixed(*ctx, covering, {}), precondition_error);
}

// --- FaultSet canonicalization (the satellite contract) --------------------

TEST(FaultSetCanonicalize, SortsAndDeduplicatesBothKinds) {
  FaultSet set;
  set.nodes = {9, 2, 9, 5, 2};
  set.edges = {40, 11, 40};
  set.canonicalize(3, 3);
  EXPECT_EQ(set.nodes, (std::vector<Word>{2, 5, 9}));
  EXPECT_EQ(set.edges, (std::vector<Word>{11, 40}));
}

TEST(FaultSetCanonicalize, MixedKindOrderingInSpecs) {
  FaultSet set;
  set.nodes = {7, 1};
  set.edges = {25, 12};  // endpoints 12->9 and 6->12: not incident to 1 or 7
  set.canonicalize(2, 4);
  const std::vector<FaultSpec> specs = set.specs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(specs.begin(), specs.end()));
  EXPECT_EQ(specs.front().kind, FaultKind::kNode);
  EXPECT_EQ(specs.back().kind, FaultKind::kEdge);
  EXPECT_EQ(FaultSet::from_specs(specs), set);
}

TEST(FaultSetCanonicalize, CollapsesNodeIncidentEdges) {
  const WordSpace ws(3, 3);
  const Word u = 14;
  FaultSet set;
  set.nodes = {u};
  // All 2d incident edge words of u, plus one unrelated survivor.
  for (Digit a = 0; a < 3; ++a) {
    set.edges.push_back(ws.edge_word(u, a));
    set.edges.push_back(ws.edge_word(ws.shift_prepend(u, a), ws.tail(u)));
  }
  const Word survivor = ws.edge_word(2, 1);  // endpoints 2 -> 7, both healthy
  set.edges.push_back(survivor);
  set.canonicalize(3, 3);
  EXPECT_EQ(set.nodes, std::vector<Word>{u});
  EXPECT_EQ(set.edges, std::vector<Word>{survivor});
}

TEST(FaultSetCanonicalize, KeepsOutOfRangeWordsVerbatim) {
  FaultSet set;
  set.nodes = {0};
  set.edges = {9999999};  // far outside B(2,3)'s 16 edge words
  set.canonicalize(2, 3);
  EXPECT_EQ(set.edges, std::vector<Word>{9999999});
}

TEST(FaultSetCanonicalize, CacheKeyStableUnderPermutedPresentation) {
  const WordSpace ws(3, 3);
  EmbedRequest a = mixed_request(3, 3, {4, 9}, {30, 60, ws.edge_word(4, 2)});
  EmbedRequest b = mixed_request(3, 3, {9, 4, 9},
                                 {60, ws.edge_word(4, 2), 30, 60});
  const CacheKey ka = service::canonical_key(a);
  const CacheKey kb = service::canonical_key(b);
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(service::CacheKeyHash{}(ka), service::CacheKeyHash{}(kb));
  // The incident edge collapsed out of the canonical key entirely.
  EXPECT_EQ(ka.faults, (std::vector<Word>{4, 9}));
  EXPECT_EQ(ka.edge_faults, (std::vector<Word>{30, 60}));
}

TEST(FaultSetCanonicalize, NodeAndEdgeWordsDoNotCollide) {
  // The same numeric word as a node fault vs as an edge fault must produce
  // different canonical keys (and different answers).
  EmbedRequest node_side = mixed_request(2, 5, {6}, {});
  EmbedRequest edge_side = mixed_request(2, 5, {}, {6});
  EXPECT_NE(service::canonical_key(node_side), service::canonical_key(edge_side));
}

// --- engine dispatch + oracle ----------------------------------------------

TEST(MixedFaultEngine, AutoResolvesMixedKind) {
  EmbedEngine engine;
  EmbedRequest req = mixed_request(3, 3, {5}, {40});
  req.strategy = Strategy::kAuto;
  const EmbedResponse resp = engine.query(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.result->strategy_used, Strategy::kMixed);
  EXPECT_TRUE(verify::check_response(req, *resp.result).ok())
      << verify::check_response(req, *resp.result).to_string();
}

TEST(MixedFaultEngine, RejectsMalformedRequests) {
  EmbedEngine engine;
  {
    // edge_faults on a homogeneous request.
    EmbedRequest req;
    req.base = 2;
    req.n = 4;
    req.fault_kind = FaultKind::kNode;
    req.faults = {1};
    req.edge_faults = {3};
    EXPECT_EQ(engine.query(req).result->status, EmbedStatus::kBadRequest);
  }
  {
    // mixed strategy over node faults.
    EmbedRequest req;
    req.base = 2;
    req.n = 4;
    req.fault_kind = FaultKind::kNode;
    req.strategy = Strategy::kMixed;
    EXPECT_EQ(engine.query(req).result->status, EmbedStatus::kBadRequest);
  }
  {
    // homogeneous strategy over mixed faults.
    EmbedRequest req = mixed_request(2, 4, {1}, {3});
    req.strategy = Strategy::kFfc;
    EXPECT_EQ(engine.query(req).result->status, EmbedStatus::kBadRequest);
  }
  {
    // mixed needs n >= 2.
    EmbedRequest req = mixed_request(4, 1, {1}, {3});
    EXPECT_EQ(engine.query(req).result->status, EmbedStatus::kBadRequest);
  }
  {
    // out-of-range edge word.
    EmbedRequest req = mixed_request(2, 3, {1}, {16});
    EXPECT_EQ(engine.query(req).result->status, EmbedStatus::kBadRequest);
  }
}

TEST(MixedFaultEngine, PermutedPresentationHitsTheCache) {
  EmbedEngine engine;
  const EmbedRequest req = mixed_request(3, 4, {7, 21}, {100, 7});
  const EmbedResponse first = engine.query(req);
  ASSERT_TRUE(first.ok());
  EmbedRequest shuffled = mixed_request(3, 4, {21, 7, 7}, {7, 100, 100});
  const EmbedResponse second = engine.query(shuffled);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result, first.result);
}

TEST(MixedFaultEngine, CorrelatedRouterLossSharesTheNodeOnlyCacheEntry) {
  // "Dead router plus its incident links" must canonicalize onto the plain
  // "dead router" entry: one cache line, bit-identical answers.
  EmbedEngine engine;
  const WordSpace ws(2, 6);
  const Word u = 19;
  const EmbedResponse bare = engine.query(mixed_request(2, 6, {u}, {}));
  ASSERT_TRUE(bare.ok());
  std::vector<Word> incident;
  for (Digit a = 0; a < 2; ++a) {
    incident.push_back(ws.edge_word(u, a));
    incident.push_back(ws.edge_word(ws.shift_prepend(u, a), ws.tail(u)));
  }
  const EmbedResponse correlated =
      engine.query(mixed_request(2, 6, {u}, incident));
  EXPECT_TRUE(correlated.cache_hit);
  EXPECT_EQ(correlated.result, bare.result);
}

TEST(MixedFaultEngine, AllMixedRegimesOracleValidated) {
  // Seeded mixed scenarios through a self-validating engine: every regime
  // must appear, and neither the engine's oracle hook nor a direct oracle
  // pass may flag a violation.
  EngineOptions options;
  options.validate_responses = true;
  EmbedEngine engine(options);
  std::set<verify::Regime> seen;
  for (std::uint64_t seed = 1; seed <= 160; ++seed) {
    const verify::Scenario sc = verify::make_scenario(seed, Strategy::kMixed);
    seen.insert(sc.regime);
    const EmbedResponse resp = engine.query(sc.request);
    ASSERT_NE(resp.result, nullptr) << sc.describe();
    ASSERT_NE(resp.result->status, EmbedStatus::kInternalError)
        << sc.describe() << ": " << resp.result->error;
    const verify::OracleReport report =
        verify::check_response(sc.request, *resp.result);
    EXPECT_TRUE(report.ok()) << sc.describe() << ": " << report.to_string();
  }
  EXPECT_EQ(engine.validation_stats().violations, 0u);
  EXPECT_TRUE(seen.contains(verify::Regime::kMixedNodeHeavy));
  EXPECT_TRUE(seen.contains(verify::Regime::kMixedEdgeHeavy));
  EXPECT_TRUE(seen.contains(verify::Regime::kMixedCorrelated));
  EXPECT_TRUE(seen.contains(verify::Regime::kFaultFree));
  EXPECT_TRUE(seen.contains(verify::Regime::kBeyondGuarantee));
  EXPECT_TRUE(seen.contains(verify::Regime::kShuffledDuplicates));
}

// --- sessions under mixed churn ---------------------------------------------

TEST(MixedFaultSession, EquivalentToStatelessUnderChurn) {
  EmbedEngine engine;
  EngineOptions cold_options;
  cold_options.enable_cache = false;
  cold_options.reuse_contexts = false;
  EmbedEngine cold(cold_options);

  for (std::uint64_t seed : {11u, 23u, 47u}) {
    const verify::ChurnScript script =
        verify::make_churn_script(seed, Strategy::kMixed, 60);
    EmbedSession session(engine, script.base_request.base,
                         script.base_request.n, FaultKind::kMixed);
    FaultSet live;
    for (const verify::ChurnEvent& event : script.events) {
      if (event.add) {
        session.add_fault(event.kind, event.fault);
      } else {
        session.clear_fault(event.kind, event.fault);
      }
      std::vector<Word>& track =
          event.kind == FaultKind::kEdge ? live.edges : live.nodes;
      if (event.add) {
        track.insert(
            std::lower_bound(track.begin(), track.end(), event.fault),
            event.fault);
      } else {
        track.erase(std::find(track.begin(), track.end(), event.fault));
      }

      const EmbedResponse incremental = session.current_ring();
      EmbedRequest stateless = script.base_request;
      stateless.faults = live.nodes;
      stateless.edge_faults = live.edges;
      const EmbedResponse fresh = cold.query(stateless);
      ASSERT_TRUE(incremental.result && fresh.result) << script.describe();
      ASSERT_TRUE(incremental.result->same_embedding(*fresh.result))
          << script.describe() << " diverged after "
          << (event.add ? "+" : "-") << event.fault;
      const verify::OracleReport report =
          verify::check_response(stateless, *incremental.result);
      ASSERT_TRUE(report.ok())
          << script.describe() << ": " << report.to_string();
    }
    EXPECT_EQ(session.faults(), live.nodes);
    EXPECT_EQ(session.edge_faults(), live.edges);
  }
}

TEST(MixedFaultSession, RouterRepairResurfacesDominatedLinkCut) {
  EmbedEngine engine;
  EmbedSession session(engine, 3, 3, FaultKind::kMixed);
  const WordSpace& ws = session.context()->words();
  const Word u = 5;
  const Word cut = ws.edge_word(u, 1);  // a link out of router u

  session.add_fault(FaultKind::kNode, u);
  session.add_fault(FaultKind::kEdge, cut);
  const EmbedResponse both = session.current_ring();
  ASSERT_TRUE(both.ok());
  // While the router is dead the link fault is dominated: identical answer
  // (and cache entry) to the router-only state.
  const EmbedResponse router_only =
      engine.query(mixed_request(3, 3, {u}, {}));
  EXPECT_TRUE(both.result->same_embedding(*router_only.result));

  // Repairing the router must resurface the cut: the ring now spans every
  // node but still avoids the cut link.
  session.clear_fault(FaultKind::kNode, u);
  const EmbedResponse after = session.current_ring();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.result->ring_length, ws.size());  // phi(3) covers one cut
  EXPECT_FALSE(ring_edge_words(ws, after.result->ring).contains(cut));
}

TEST(MixedFaultSession, HomogeneousSessionRejectsForeignKind) {
  EmbedEngine engine;
  EmbedSession node_session(engine, 2, 5, FaultKind::kNode);
  EXPECT_THROW(node_session.add_fault(FaultKind::kEdge, 3), precondition_error);
  EmbedSession mixed_session(engine, 2, 5, FaultKind::kMixed);
  EXPECT_THROW(mixed_session.add_fault(7), precondition_error);
  EXPECT_THROW(mixed_session.add_fault(FaultKind::kMixed, 7),
               precondition_error);
}

// --- sim driver: kills + link cuts ------------------------------------------

TEST(MixedFaultDriver, DrivesKillsAndLinkCutsThroughOneSession) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kMixed);
  const WordSpace& ws = session.context()->words();
  sim::Engine net(ws.size(), [&ws](NodeId u, NodeId v) {
    return u < ws.size() && v < ws.size() && ws.suffix(u) == ws.prefix(v);
  });
  sim::SessionDriver driver(net, session);

  const Word dead = 9;
  const Word cut = ws.edge_word(33, 1);
  driver.kill(dead);
  driver.cut_link(cut);
  const EmbedResponse resp = driver.current_ring();
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(net.alive(dead));
  const auto [cu, cv] = ws.edge_endpoints(cut);
  EXPECT_FALSE(net.link_alive(cu, cv));
  for (Word v : resp.result->ring.nodes) EXPECT_NE(v, dead);
  EXPECT_FALSE(ring_edge_words(ws, resp.result->ring).contains(cut));

  driver.repair(dead);
  driver.restore_link(cut);
  EXPECT_TRUE(net.alive(dead));
  EXPECT_TRUE(net.link_alive(cu, cv));
  const sim::ChurnDriveStats& stats = driver.stats();
  EXPECT_EQ(stats.kills, 1u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(stats.link_cuts, 1u);
  EXPECT_EQ(stats.link_restores, 1u);
}

TEST(MixedFaultDriver, ReplaysMixedChurnScripts) {
  EmbedEngine engine;
  const verify::ChurnScript script =
      verify::make_churn_script(3, Strategy::kMixed, 40);
  EmbedSession session(engine, script.base_request.base,
                       script.base_request.n, FaultKind::kMixed);
  const WordSpace& ws = session.context()->words();
  sim::Engine net(ws.size(), [&ws](NodeId u, NodeId v) {
    return u < ws.size() && v < ws.size() && ws.suffix(u) == ws.prefix(v);
  });
  sim::SessionDriver driver(net, session);
  const sim::ChurnDriveStats stats = sim::drive_script(driver, script);
  EXPECT_EQ(stats.rings_embedded + stats.no_embeddings, script.events.size());
  // The final session state matches the script's replayed fault set.
  const FaultSet final = script.final_fault_set();
  EXPECT_EQ(session.faults(), final.nodes);
  EXPECT_EQ(session.edge_faults(), final.edges);
}

}  // namespace
}  // namespace dbr
