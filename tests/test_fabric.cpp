#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/distributed_ffc.hpp"
#include "service/engine.hpp"
#include "service/fabric.hpp"
#include "service/session.hpp"
#include "sim/engine.hpp"
#include "sim/session_driver.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr::service {
namespace {

EmbedRequest node_request(Digit d, unsigned n, std::vector<Word> faults) {
  EmbedRequest req;
  req.base = d;
  req.n = n;
  req.fault_kind = FaultKind::kNode;
  req.faults = std::move(faults);
  return req;
}

/// The small FFC instances the router tests span: cheap to solve, many
/// enough that every 4-shard placement owns several.
const std::vector<std::pair<Digit, unsigned>>& test_instances() {
  static const std::vector<std::pair<Digit, unsigned>> kInstances = {
      {2, 5}, {2, 6}, {2, 7}, {2, 8}, {3, 3}, {3, 4},
      {3, 5}, {4, 3}, {4, 4}, {5, 3}, {6, 2}, {7, 2},
  };
  return kInstances;
}

/// One request per test instance plus faulted variants, deterministic.
std::vector<EmbedRequest> test_stream(std::size_t repeats) {
  Rng rng(20260808);
  std::vector<EmbedRequest> stream;
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const auto& [d, n] : test_instances()) {
      const std::uint64_t f = 1 + rng.below(2);
      std::vector<Word> faults;
      for (std::uint64_t v : rng.sample_distinct(WordSpace(d, n).size(), f))
        faults.push_back(v);
      stream.push_back(node_request(d, n, std::move(faults)));
    }
  }
  return stream;
}

// --- HashRing invariants ----------------------------------------------------

TEST(HashRing, MinimalKeyMovementOnRemove) {
  HashRing before(64);
  for (ShardId s = 0; s < 5; ++s) before.add(s);
  HashRing after = before;
  after.remove(2);

  std::size_t moved = 0;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const std::uint64_t point = i * 0x9e3779b97f4a7c15ull;
    const ShardId old_owner = before.owner(point);
    const ShardId new_owner = after.owner(point);
    if (old_owner != 2) {
      // Only the departed shard's arc may remap.
      EXPECT_EQ(old_owner, new_owner);
    } else {
      EXPECT_NE(new_owner, 2u);
      ++moved;
    }
  }
  // The victim owned a nontrivial arc, and nothing else moved.
  EXPECT_GT(moved, 0u);
}

TEST(HashRing, AddIsInverseOfRemove) {
  HashRing ring(64);
  for (ShardId s = 0; s < 5; ++s) ring.add(s);
  std::vector<ShardId> owners;
  for (std::uint64_t i = 0; i < 2000; ++i)
    owners.push_back(ring.owner(i * 0x2545f4914f6cdd1dull));
  ring.remove(3);
  ring.add(3);
  for (std::uint64_t i = 0; i < 2000; ++i)
    EXPECT_EQ(owners[i], ring.owner(i * 0x2545f4914f6cdd1dull));
}

TEST(HashRing, BalanceBoundWithVnodes) {
  constexpr std::size_t kShards = 8;
  HashRing ring(128);
  for (ShardId s = 0; s < kShards; ++s) ring.add(s);
  std::vector<std::uint64_t> owned(kShards, 0);
  constexpr std::uint64_t kPoints = 40000;
  Rng rng(7);
  for (std::uint64_t i = 0; i < kPoints; ++i) owned[ring.owner(rng.next_u64())]++;
  const double mean = static_cast<double>(kPoints) / kShards;
  for (ShardId s = 0; s < kShards; ++s) {
    EXPECT_LT(owned[s], mean * 1.75) << "shard " << s << " overloaded";
    EXPECT_GT(owned[s], mean * 0.40) << "shard " << s << " starved";
  }
}

TEST(HashRing, DeterministicPlacementAcrossBuilds) {
  // Two rings built in different insertion orders agree everywhere: the
  // placement is a pure function of (shard set, vnodes), never of history —
  // which is what makes placement reproducible across processes.
  HashRing a(64), b(64);
  for (ShardId s = 0; s < 6; ++s) a.add(s);
  for (ShardId s = 6; s-- > 0;) b.add(s);
  for (const auto& [d, n] : test_instances()) {
    const std::uint64_t point = HashRing::instance_point(d, n);
    EXPECT_EQ(a.owner(point), b.owner(point));
    EXPECT_EQ(a.successors(point, 3), b.successors(point, 3));
  }
}

TEST(HashRing, SuccessorsAreDistinctAndOwnerFirst) {
  HashRing ring(64);
  for (ShardId s = 0; s < 5; ++s) ring.add(s);
  for (const auto& [d, n] : test_instances()) {
    const std::uint64_t point = HashRing::instance_point(d, n);
    const std::vector<ShardId> chain = ring.successors(point, 3);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain.front(), ring.owner(point));
    std::set<ShardId> distinct(chain.begin(), chain.end());
    EXPECT_EQ(distinct.size(), chain.size());
  }
  // Asking for more shards than exist returns them all, once each.
  const std::vector<ShardId> all = ring.successors(123, 99);
  EXPECT_EQ(all.size(), 5u);
}

TEST(HashRing, PreconditionsThrow) {
  HashRing ring(8);
  EXPECT_THROW(ring.owner(0), precondition_error);
  ring.add(0);
  EXPECT_THROW(ring.add(0), precondition_error);
  EXPECT_THROW(ring.remove(1), precondition_error);
}

// --- ShardRouter ------------------------------------------------------------

FabricOptions small_fabric(std::size_t shards, std::size_t workers = 0) {
  FabricOptions opts;
  opts.shards = shards;
  opts.workers_per_shard = workers;
  opts.hot_threshold = 0;  // replication off unless a test opts in
  return opts;
}

TEST(ShardRouter, BitIdenticalToSingleEngine) {
  ShardRouter fabric(small_fabric(4));
  EmbedEngine single;
  for (const EmbedRequest& req : test_stream(2)) {
    const EmbedResponse ours = fabric.query(req);
    const EmbedResponse theirs = single.query(req);
    ASSERT_TRUE(ours.result && theirs.result);
    EXPECT_TRUE(ours.result->same_embedding(*theirs.result));
  }
}

TEST(ShardRouter, NoContextBuiltTwiceFabricWide) {
  ShardRouter fabric(small_fabric(4));
  const std::vector<EmbedRequest> stream = test_stream(3);
  for (const EmbedRequest& req : stream) fabric.query(req);
  const FabricStats stats = fabric.stats();
  std::uint64_t total_builds = 0, total_owned = 0;
  for (const FabricShardStats& s : stats.shards) {
    total_builds += s.engine.contexts.misses;
    total_owned += s.keys_owned;
  }
  // Every distinct instance was built exactly once, on exactly one shard.
  EXPECT_EQ(total_builds, test_instances().size());
  EXPECT_EQ(total_owned, test_instances().size());
  EXPECT_EQ(stats.queries, stream.size());
  EXPECT_EQ(stats.replica_reads, 0u);
}

TEST(ShardRouter, QueryBatchMatchesIndividualQueries) {
  ShardRouter pooled(small_fabric(3, /*workers=*/2));
  ShardRouter inline_router(small_fabric(3, /*workers=*/0));
  const std::vector<EmbedRequest> stream = test_stream(2);
  const std::vector<EmbedResponse> batched = pooled.query_batch(stream);
  ASSERT_EQ(batched.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const EmbedResponse one = inline_router.query(stream[i]);
    ASSERT_TRUE(batched[i].result && one.result) << "request " << i;
    EXPECT_TRUE(batched[i].result->same_embedding(*one.result))
        << "request " << i;
  }
}

TEST(ShardRouter, HotKeyReplicationSpreadsReads) {
  FabricOptions opts = small_fabric(4);
  opts.hot_threshold = 8;
  opts.hot_replicas = 2;
  ShardRouter fabric(opts);
  EmbedEngine single;
  const EmbedRequest req = node_request(2, 6, {1, 9});
  const auto expected = single.query(req);
  for (int i = 0; i < 200; ++i) {
    const EmbedResponse got = fabric.query(req);
    ASSERT_TRUE(got.result);
    EXPECT_TRUE(got.result->same_embedding(*expected.result));
  }
  const FabricStats stats = fabric.stats();
  EXPECT_EQ(stats.hot_keys, 1u);
  // Past the threshold, reads round-robin the 3-shard chain: the two
  // replicas absorb roughly two thirds of the tail.
  EXPECT_GT(stats.replica_reads, 100u);
  const std::vector<ShardId> chain = fabric.replica_chain(2, 6);
  ASSERT_EQ(chain.size(), 3u);
  std::uint64_t served_by_chain = 0;
  for (ShardId s : chain) served_by_chain += stats.shards[s].queries;
  EXPECT_EQ(served_by_chain, 200u);
}

TEST(ShardRouter, KillShardRemapsOnlyItsArcAndKeepsAnswers) {
  ShardRouter fabric(small_fabric(4));
  EmbedEngine single;
  const std::vector<EmbedRequest> stream = test_stream(1);
  for (const EmbedRequest& req : stream) fabric.query(req);

  std::map<std::uint64_t, ShardId> owner_before;
  for (const auto& [d, n] : test_instances())
    owner_before[(static_cast<std::uint64_t>(d) << 32) | n] =
        fabric.owner_of(d, n);
  // Kill a shard that owns at least one test instance, so the remap is
  // observable.
  ShardId victim = fabric.owner_of(2, 5);
  fabric.kill_shard(victim);
  EXPECT_FALSE(fabric.shard_alive(victim));
  EXPECT_EQ(fabric.alive_count(), 3u);

  std::uint64_t moved = 0;
  for (const auto& [d, n] : test_instances()) {
    const ShardId before = owner_before[(static_cast<std::uint64_t>(d) << 32) | n];
    const ShardId after = fabric.owner_of(d, n);
    if (before == victim) {
      EXPECT_NE(after, victim);
      ++moved;
    } else {
      EXPECT_EQ(after, before);  // only the victim's arc may move
    }
  }
  EXPECT_GT(moved, 0u);

  // Answers stay bit-identical to the single-engine baseline after remap.
  for (const EmbedRequest& req : stream) {
    const EmbedResponse ours = fabric.query(req);
    const EmbedResponse theirs = single.query(req);
    ASSERT_TRUE(ours.result && theirs.result);
    EXPECT_TRUE(ours.result->same_embedding(*theirs.result));
  }

  // Revive restores the original placement exactly (add is remove's
  // inverse on the ring).
  fabric.revive_shard(victim);
  EXPECT_TRUE(fabric.shard_alive(victim));
  for (const auto& [d, n] : test_instances()) {
    EXPECT_EQ(fabric.owner_of(d, n),
              owner_before[(static_cast<std::uint64_t>(d) << 32) | n]);
  }
}

TEST(ShardRouter, KillShardChargesSection24RebuildCost) {
  ShardRouter fabric(small_fabric(4));
  for (const EmbedRequest& req : test_stream(1)) fabric.query(req);
  const ShardId victim = fabric.owner_of(2, 5);

  // Expected price: one distributed rebuild per instance on the victim's
  // arc (the diameter-bound estimate, eccentricity unknown at remap time).
  core::DistributedFfcStats expected;
  std::uint64_t expected_keys = 0;
  for (const auto& [d, n] : test_instances()) {
    if (fabric.owner_of(d, n) != victim) continue;
    const core::DistributedFfcStats one = core::predict_rebuild_rounds(d, n);
    expected.probe_rounds += one.probe_rounds;
    expected.broadcast_rounds += one.broadcast_rounds;
    expected.dossier_rounds += one.dossier_rounds;
    expected.announce_rounds += one.announce_rounds;
    expected.reroute_rounds += one.reroute_rounds;
    expected.messages += one.messages;
    ++expected_keys;
  }
  ASSERT_GT(expected_keys, 0u);

  fabric.kill_shard(victim);
  const FabricStats stats = fabric.stats();
  EXPECT_EQ(stats.remap_events, 1u);
  EXPECT_EQ(stats.remapped_keys, expected_keys);
  EXPECT_EQ(stats.remap_cost.total_rounds(), expected.total_rounds());
  EXPECT_EQ(stats.remap_cost.messages, expected.messages);

  // The migrated contexts were rebuilt eagerly: serving the remapped arc
  // again misses no context anywhere.
  std::uint64_t builds_before = 0;
  for (const FabricShardStats& s : stats.shards)
    builds_before += s.engine.contexts.misses;
  for (const EmbedRequest& req : test_stream(1)) fabric.query(req);
  std::uint64_t builds_after = 0;
  for (const FabricShardStats& s : fabric.stats().shards)
    builds_after += s.engine.contexts.misses;
  EXPECT_EQ(builds_after, builds_before);
}

TEST(ShardRouter, MidBatchShardKillKeepsAnswersWithOracle) {
  FabricOptions opts = small_fabric(4, /*workers=*/1);
  opts.engine.validate_responses = true;
  ShardRouter fabric(opts);
  EmbedEngine single;
  const std::vector<EmbedRequest> stream = test_stream(4);

  // Kill a shard while the batch is in flight, then revive it. The batch
  // must complete with every answer bit-identical and zero oracle
  // violations.
  std::vector<EmbedResponse> responses;
  std::thread load([&] { responses = fabric.query_batch(stream); });
  fabric.kill_shard(1);
  fabric.revive_shard(1);
  load.join();

  ASSERT_EQ(responses.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const EmbedResponse expected = single.query(stream[i]);
    ASSERT_TRUE(responses[i].result && expected.result) << "request " << i;
    EXPECT_TRUE(responses[i].result->same_embedding(*expected.result))
        << "request " << i;
  }
  EXPECT_EQ(fabric.aggregate_engine_stats().validation.violations, 0u);
  const FabricStats stats = fabric.stats();
  EXPECT_EQ(stats.remap_events, 2u);
}

TEST(ShardRouter, KillPreconditions) {
  ShardRouter fabric(small_fabric(2));
  EXPECT_THROW(fabric.kill_shard(9), precondition_error);
  fabric.kill_shard(0);
  EXPECT_THROW(fabric.kill_shard(0), precondition_error);  // already dead
  EXPECT_THROW(fabric.kill_shard(1), precondition_error);  // last shard
  EXPECT_THROW(fabric.revive_shard(1), precondition_error);  // still alive
  fabric.revive_shard(0);
  EXPECT_TRUE(fabric.shard_alive(0));
}

// Regression: the key map retires one snapshot per distinct (base, n) key,
// and RcuSnapshot's retire list waits out in-flight readers once it holds
// 16 deferred snapshots. key_state() used to publish while still holding
// its own ReadGuard, so the 16th distinct key spun forever on the caller's
// own pin. Anything past 16 distinct keys exercises the fixed path.
TEST(ShardRouter, ManyDistinctKeysDoNotWedgeTheKeyMap) {
  ShardRouter fabric(small_fabric(2));
  const std::vector<std::pair<Digit, unsigned>> keys = {
      {2, 3}, {2, 4},  {2, 5}, {2, 6}, {2, 7}, {2, 8}, {2, 9},
      {2, 10}, {3, 2}, {3, 3}, {3, 4}, {3, 5}, {3, 6}, {4, 2},
      {4, 3}, {4, 4},  {5, 2}, {5, 3}, {6, 2}, {7, 2},
  };
  ASSERT_GT(keys.size(), 16u);
  for (const auto& [d, n] : keys) {
    (void)fabric.query(node_request(d, n, {1}));
  }
  std::uint64_t owned = 0;
  for (const FabricShardStats& s : fabric.stats().shards) owned += s.keys_owned;
  EXPECT_EQ(owned, keys.size());
}

// Regression companion: kill_shard/revive_shard publish one ring snapshot
// each, and also used to do so under their own ring ReadGuard. Churning
// past the 16-snapshot retire bound must not wedge the ring either.
TEST(ShardRouter, RingSurvivesChurnPastRetireBound) {
  ShardRouter fabric(small_fabric(3));
  const EmbedRequest probe = node_request(2, 6, {1});
  for (int round = 0; round < 12; ++round) {
    const ShardId victim = static_cast<ShardId>(round % 3);
    fabric.kill_shard(victim);
    (void)fabric.query(probe);
    fabric.revive_shard(victim);
    (void)fabric.query(probe);
  }
  EXPECT_EQ(fabric.alive_count(), 3u);
  for (ShardId s = 0; s < 3; ++s) EXPECT_TRUE(fabric.shard_alive(s));
}

// Regression for the util::Mutex/CondVar/UniqueLock migration (the fabric's
// shard queues, batch latch and admin section now lock through the annotated
// wrappers): behavior under genuinely concurrent traffic — several threads
// issuing batches while shards churn — must be unchanged. Every response
// stays bit-identical to a single-engine reference and no batch wedges on
// the rewritten while-loop condition waits.
TEST(ShardRouter, WrappedLocksPreserveBehaviorUnderConcurrentTraffic) {
  constexpr std::size_t kLoadThreads = 4;
  FabricOptions opts = small_fabric(4, /*workers=*/2);
  ShardRouter fabric(opts);
  EmbedEngine single;
  const std::vector<EmbedRequest> stream = test_stream(3);

  std::vector<std::vector<EmbedResponse>> results(kLoadThreads);
  std::vector<std::thread> load;
  load.reserve(kLoadThreads);
  for (std::size_t t = 0; t < kLoadThreads; ++t) {
    load.emplace_back([&, t] { results[t] = fabric.query_batch(stream); });
  }
  // Churn the ring while the batches drain: kill/revive serialize on the
  // wrapped admin mutex, workers block on the wrapped shard cv.
  for (int round = 0; round < 3; ++round) {
    const ShardId victim = static_cast<ShardId>(1 + round % 3);
    fabric.kill_shard(victim);
    fabric.revive_shard(victim);
  }
  for (auto& t : load) t.join();

  std::vector<EmbedResponse> expected;
  expected.reserve(stream.size());
  for (const EmbedRequest& req : stream) expected.push_back(single.query(req));
  for (std::size_t t = 0; t < kLoadThreads; ++t) {
    ASSERT_EQ(results[t].size(), stream.size()) << "thread " << t;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      ASSERT_TRUE(results[t][i].result && expected[i].result)
          << "thread " << t << " request " << i;
      EXPECT_TRUE(results[t][i].result->same_embedding(*expected[i].result))
          << "thread " << t << " request " << i;
    }
  }
  EXPECT_EQ(fabric.alive_count(), 4u);
  EXPECT_EQ(fabric.stats().remap_events, 6u);
}

TEST(ShardRouter, EngineForFollowsOwnership) {
  ShardRouter fabric(small_fabric(3));
  for (const auto& [d, n] : test_instances()) {
    const ShardId owner = fabric.owner_of(d, n);
    EXPECT_EQ(&fabric.engine_for(d, n), &fabric.shard_engine(owner));
  }
}

// --- SessionDriver shard events ---------------------------------------------

TEST(SessionDriverFabric, ShardLossIsAChurnEvent) {
  ShardRouter fabric(small_fabric(3));
  const Digit d = 2;
  const unsigned n = 6;
  EmbedSession session(fabric.engine_for(d, n), d, n, FaultKind::kNode);
  sim::Engine net(WordSpace(d, n).size(),
                  [ws = WordSpace(d, n)](NodeId u, NodeId v) {
                    return ws.suffix(u) == ws.prefix(v);
                  });
  sim::SessionDriver driver(net, session);
  driver.attach_fabric(fabric);

  EmbedEngine single;
  driver.kill(3);
  const EmbedResponse before = driver.current_ring();
  ASSERT_TRUE(before.ok());
  // Lose the shard serving this very instance mid-churn; the session's
  // pinned engine keeps answering, bit-identical.
  const ShardId victim = fabric.owner_of(d, n);
  driver.kill_shard(victim);
  driver.kill(17);
  const EmbedResponse after = driver.current_ring();
  ASSERT_TRUE(after.ok());
  const EmbedResponse expected = single.query(node_request(d, n, {3, 17}));
  EXPECT_TRUE(after.result->same_embedding(*expected.result));

  driver.revive_shard(victim);
  const sim::ChurnDriveStats& stats = driver.stats();
  EXPECT_EQ(stats.shard_kills, 1u);
  EXPECT_EQ(stats.shard_revives, 1u);
  EXPECT_EQ(stats.kills, 2u);
}

TEST(SessionDriverFabric, ShardEventsRequireAttachedFabric) {
  const Digit d = 2;
  const unsigned n = 5;
  EmbedEngine engine;
  EmbedSession session(engine, d, n, FaultKind::kNode);
  sim::Engine net(WordSpace(d, n).size(),
                  [ws = WordSpace(d, n)](NodeId u, NodeId v) {
                    return ws.suffix(u) == ws.prefix(v);
                  });
  sim::SessionDriver driver(net, session);
  EXPECT_THROW(driver.kill_shard(0), precondition_error);
  EXPECT_THROW(driver.revive_shard(0), precondition_error);
}

}  // namespace
}  // namespace dbr::service
