// Incremental ring repair (core/repair + the EmbedSession fast path):
// delta splices must produce rings that are oracle-valid and sit in the
// same paper envelope a cold solve would claim, falling back — never
// mis-serving — whenever a delta crosses a family boundary, disconnects
// the cover, or escapes the envelope.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "butterfly/lift.hpp"
#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "core/instance_context.hpp"
#include "core/mixed_fault.hpp"
#include "core/repair.hpp"
#include "debruijn/cycle.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"
#include "sim/session_driver.hpp"
#include "util/rng.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

namespace dbr::core {
namespace {

using service::EmbedRequest;
using service::EmbedResult;
using service::EmbedStatus;
using service::FaultKind;
using service::Strategy;

/// Wraps a repair outcome as the EmbedResult a session would serve, so the
/// verify/ oracle can judge it exactly like an engine answer.
EmbedResult as_result(const RepairOutcome& out, Strategy strategy) {
  EmbedResult result;
  result.status = EmbedStatus::kOk;
  result.strategy_used = strategy;
  result.ring = *out.ring;
  result.ring_length = out.ring->length();
  result.lower_bound = out.lower_bound;
  result.upper_bound = out.upper_bound;
  return result;
}

EmbedRequest node_request(Digit base, unsigned n, std::vector<Word> faults) {
  EmbedRequest req;
  req.base = base;
  req.n = n;
  req.fault_kind = FaultKind::kNode;
  req.strategy = Strategy::kFfc;
  req.faults = std::move(faults);
  return req;
}

TEST(NodeRepairTest, SingleFaultExcisionIsOracleValidAndInEnvelope) {
  const auto ctx = InstanceContext::make(2, 8);
  const WordSpace& ws = ctx->words();
  const FfcResult base = solve_ffc(*ctx, {});
  ASSERT_TRUE(is_hamiltonian(ws, base.cycle));

  for (Word f : {Word{0}, Word{1}, Word{5}, Word{37}, Word{100}, Word{255}}) {
    const std::vector<Word> faults = {f};
    const RepairOutcome out = repair_node_ring(*ctx, base.cycle, {}, faults);
    ASSERT_TRUE(out.repaired()) << "fault " << f << ": "
                                << to_string(out.fallback);
    EXPECT_EQ(out.spliced_necklaces, 1u);
    EXPECT_TRUE(is_cycle(ws, *out.ring)) << "fault " << f;

    const auto report =
        verify::check_response(node_request(2, 8, faults),
                               as_result(out, Strategy::kFfc));
    EXPECT_TRUE(report.ok()) << "fault " << f << ": " << report.to_string();

    // The splice keeps every survivor of the old cover, so it can never be
    // shorter than a cold solve (which retreats to the largest SCC).
    const FfcResult cold = solve_ffc(*ctx, faults);
    EXPECT_GE(out.ring->length(), cold.cycle.length());
    const auto [lo, hi] = ffc_cycle_length_bounds(2, 8, 1);
    EXPECT_EQ(out.lower_bound, lo);
    EXPECT_EQ(out.upper_bound, hi);
  }
}

TEST(NodeRepairTest, AddThenRemoveRestoresTheFullCover) {
  const auto ctx = InstanceContext::make(2, 8);
  const WordSpace& ws = ctx->words();
  const FfcResult base = solve_ffc(*ctx, {});
  const std::vector<Word> faults = {42};
  const RepairOutcome excised = repair_node_ring(*ctx, base.cycle, {}, faults);
  ASSERT_TRUE(excised.repaired());
  EXPECT_LT(excised.ring->length(), ws.size());

  const RepairOutcome revived =
      repair_node_ring(*ctx, *excised.ring, faults, {});
  ASSERT_TRUE(revived.repaired()) << to_string(revived.fallback);
  EXPECT_TRUE(is_hamiltonian(ws, *revived.ring));
  EXPECT_EQ(revived.lower_bound, ws.size());
  EXPECT_EQ(revived.upper_bound, ws.size());
}

TEST(NodeRepairTest, SecondFaultOnTheSameNecklaceIsANoopSplice) {
  const auto ctx = InstanceContext::make(2, 8);
  const WordSpace& ws = ctx->words();
  const FfcResult base = solve_ffc(*ctx, {});
  const Word f = 1;
  const Word rotated = ws.rotate_left(f, 1);  // same necklace, other word
  const RepairOutcome first = repair_node_ring(*ctx, base.cycle, {}, {{f}});
  ASSERT_TRUE(first.repaired());

  std::vector<Word> both = {f, rotated};
  std::sort(both.begin(), both.end());
  const RepairOutcome second =
      repair_node_ring(*ctx, *first.ring, {{f}}, both);
  ASSERT_TRUE(second.repaired());
  EXPECT_EQ(second.spliced_necklaces, 0u);  // necklace already excised
  EXPECT_EQ(second.ring->nodes, first.ring->nodes);
  // The envelope still tracks the *fault count*, not the necklace count.
  EXPECT_EQ(second.upper_bound, ws.size() - 2);
}

TEST(NodeRepairTest, FallsBackWhenTheDeltaExcisesEveryNecklace) {
  const auto ctx = InstanceContext::make(2, 2);
  const FfcResult base = solve_ffc(*ctx, {});
  // B(2,2) has necklaces {00}, {01,10}, {11}; these faults cover them all.
  const RepairOutcome out =
      repair_node_ring(*ctx, base.cycle, {}, {{0, 1, 3}});
  EXPECT_FALSE(out.repaired());
  EXPECT_EQ(out.fallback, RepairFallback::kRingVanished);
}

TEST(NodeRepairTest, SeededChurnSequenceStaysOracleValid) {
  const auto ctx = InstanceContext::make(2, 10);
  const WordSpace& ws = ctx->words();
  Rng rng(20260729);
  NodeCycle ring = solve_ffc(*ctx, {}).cycle;
  std::vector<Word> live;
  std::uint64_t repaired = 0;
  for (int event = 0; event < 60; ++event) {
    std::vector<Word> next = live;
    if (live.size() < 4 && (live.empty() || rng.below(2) == 0)) {
      Word f = rng.below(ws.size());
      while (std::find(next.begin(), next.end(), f) != next.end()) {
        f = rng.below(ws.size());
      }
      next.push_back(f);
    } else {
      next.erase(next.begin() + static_cast<long>(rng.below(next.size())));
    }
    std::sort(next.begin(), next.end());
    const RepairOutcome out = repair_node_ring(*ctx, ring, live, next);
    if (out.repaired()) {
      const auto report = verify::check_response(
          node_request(2, 10, next), as_result(out, Strategy::kFfc));
      ASSERT_TRUE(report.ok())
          << "event " << event << ": " << report.to_string();
      ring = *out.ring;
      ++repaired;
    } else {
      ring = solve_ffc(*ctx, next).cycle;  // the documented fallback
    }
    live = std::move(next);
  }
  // Single-fault deltas are the common case; most must splice.
  EXPECT_GT(repaired, 40u);
}

TEST(EdgeRepairTest, AvoidedFaultIsANoopAndTraversedFaultFallsBack) {
  const auto ctx = InstanceContext::make(4, 4);
  const WordSpace& ws = ctx->words();
  const auto hc = solve_edge_auto(*ctx, {});
  ASSERT_TRUE(hc.has_value());
  const NodeCycle ring = to_node_cycle(ws, *hc);
  const std::vector<Word> used = edge_words(ws, ring);
  const std::unordered_set<Word> used_set(used.begin(), used.end());

  Word unused = ws.edge_word_count();
  for (Word e = 0; e < ws.edge_word_count(); ++e) {
    if (!used_set.contains(e)) {
      unused = e;
      break;
    }
  }
  ASSERT_LT(unused, ws.edge_word_count());

  const RepairOutcome noop = repair_edge_ring(*ctx, ring, {{unused}});
  ASSERT_TRUE(noop.repaired());
  EXPECT_TRUE(noop.unchanged);  // the old ring serves verbatim, no copy
  EXPECT_FALSE(noop.ring.has_value());
  EXPECT_EQ(noop.lower_bound, ws.size());

  const RepairOutcome crossed = repair_edge_ring(*ctx, ring, {{used[0]}});
  EXPECT_FALSE(crossed.repaired());
  EXPECT_EQ(crossed.fallback, RepairFallback::kCrossesFamily);
}

TEST(ButterflyRepairTest, PullsRingEdgesBackPerLemma38) {
  const auto ctx = InstanceContext::make(3, 4);  // gcd(3, 4) = 1
  const WordSpace& ws = ctx->words();
  const auto hc = solve_edge_auto(*ctx, {});
  ASSERT_TRUE(hc.has_value());
  const NodeCycle base = to_node_cycle(ws, *hc);
  NodeCycle lifted;
  lifted.nodes = butterfly::lift_cycle(ctx->butterfly(), base);

  const std::vector<Word> used = edge_words(ws, base);
  const std::unordered_set<Word> used_set(used.begin(), used.end());
  Word unused = ws.edge_word_count();
  for (Word e = 0; e < ws.edge_word_count(); ++e) {
    if (!used_set.contains(e)) {
      unused = e;
      break;
    }
  }
  ASSERT_LT(unused, ws.edge_word_count());

  const RepairOutcome noop = repair_butterfly_ring(*ctx, lifted, {{unused}});
  ASSERT_TRUE(noop.repaired()) << to_string(noop.fallback);
  EXPECT_TRUE(noop.unchanged);

  const RepairOutcome crossed =
      repair_butterfly_ring(*ctx, lifted, {{used[0]}});
  EXPECT_FALSE(crossed.repaired());
  EXPECT_EQ(crossed.fallback, RepairFallback::kCrossesFamily);
}

TEST(MixedRepairTest, TraversedCutsGetPullbackDetours) {
  const auto ctx = InstanceContext::make(2, 6);
  const WordSpace& ws = ctx->words();
  const std::vector<Word> nodes = {1};
  const MixedResult old = solve_mixed(*ctx, nodes, {});
  ASSERT_TRUE(old.cycle.has_value());
  ASSERT_EQ(old.route, MixedRoute::kFfcPullback);

  std::uint64_t detoured = 0;
  for (const Word e : edge_words(ws, *old.cycle)) {
    const RepairOutcome out =
        repair_mixed_ring(*ctx, *old.cycle, nodes, {}, nodes, {{e}});
    if (!out.repaired()) continue;  // a legal fallback (e.g. disconnection)
    ++detoured;
    EXPECT_GE(out.spliced_necklaces, 1u);  // the pull-back excised a necklace
    EmbedRequest req;
    req.base = 2;
    req.n = 6;
    req.fault_kind = FaultKind::kMixed;
    req.strategy = Strategy::kMixed;
    req.faults = nodes;
    req.edge_faults = {e};
    const auto report =
        verify::check_response(req, as_result(out, Strategy::kMixed));
    EXPECT_TRUE(report.ok()) << "edge " << e << ": " << report.to_string();
  }
  EXPECT_GT(detoured, 0u);
}

TEST(MixedRepairTest, HamiltonianRouteAcceptsAvoidedCutsOnly) {
  const auto ctx = InstanceContext::make(2, 6);
  const WordSpace& ws = ctx->words();
  const MixedResult old = solve_mixed(*ctx, {}, {});
  ASSERT_TRUE(old.cycle.has_value());
  ASSERT_EQ(old.route, MixedRoute::kHamiltonian);

  const std::vector<Word> used = edge_words(ws, *old.cycle);
  const std::unordered_set<Word> used_set(used.begin(), used.end());
  Word unused = ws.edge_word_count();
  for (Word e = 0; e < ws.edge_word_count(); ++e) {
    if (!used_set.contains(e)) {
      unused = e;
      break;
    }
  }
  const RepairOutcome noop =
      repair_mixed_ring(*ctx, *old.cycle, {}, {}, {}, {{unused}});
  ASSERT_TRUE(noop.repaired()) << to_string(noop.fallback);
  EXPECT_TRUE(noop.unchanged);

  // A dead router can never ride a Hamiltonian ring: route switch.
  const RepairOutcome switched =
      repair_mixed_ring(*ctx, *old.cycle, {}, {}, {{5}}, {});
  EXPECT_FALSE(switched.repaired());
  EXPECT_EQ(switched.fallback, RepairFallback::kCrossesFamily);
}

}  // namespace
}  // namespace dbr::core

// --------------------------------------------------------------------------
// Service-layer repair: the EmbedSession fast path under
// EngineOptions::incremental_repair.

namespace dbr::service {
namespace {

using verify::ChurnEvent;
using verify::ChurnScript;

EngineOptions repair_options() {
  EngineOptions options;
  options.incremental_repair = true;
  return options;
}

void apply(EmbedSession& session, const ChurnEvent& event) {
  if (event.add) {
    session.add_fault(event.kind, event.fault);
  } else {
    session.clear_fault(event.kind, event.fault);
  }
}

EmbedRequest request_for(const ChurnScript& script,
                         const EmbedSession& session) {
  EmbedRequest req = script.base_request;
  req.faults = session.faults();
  req.edge_faults = session.edge_faults();
  return req;
}

TEST(SessionRepairTest, ChurnVerdictsAndEnvelopesMatchColdSolves) {
  for (Strategy s : {Strategy::kFfc, Strategy::kEdgeAuto, Strategy::kMixed}) {
    std::uint64_t spliced_total = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const ChurnScript script = verify::make_churn_script(seed, s, 24);
      EmbedEngine engine(repair_options());
      EmbedSession session(engine, script.base_request.base,
                           script.base_request.n,
                           script.base_request.fault_kind,
                           script.base_request.strategy);
      EmbedEngine cold(EngineOptions{.enable_cache = false});
      for (const ChurnEvent& event : script.events) {
        apply(session, event);
        const EmbedResponse repaired = session.current_ring();
        const EmbedRequest request = request_for(script, session);
        const EmbedResponse baseline = cold.query(request);
        ASSERT_TRUE(repaired.result && baseline.result) << script.describe();
        // Byte-identical validity verdict: the repaired answer passes the
        // same oracle the engine answer does, and its envelope agrees with
        // the cold solve whenever both embed. The one legal divergence is
        // a strict improvement — a surviving spliced ring stays kOk where
        // the constructions give up beyond guarantee — never the reverse.
        if (repaired.result->status == baseline.result->status) {
          EXPECT_EQ(repaired.result->lower_bound,
                    baseline.result->lower_bound)
              << script.describe();
          EXPECT_EQ(repaired.result->upper_bound,
                    baseline.result->upper_bound)
              << script.describe();
        } else {
          EXPECT_EQ(repaired.result->status, EmbedStatus::kOk)
              << script.describe();
          EXPECT_EQ(baseline.result->status, EmbedStatus::kNoEmbedding)
              << script.describe();
          EXPECT_TRUE(repaired.repaired) << script.describe();
        }
        const verify::OracleReport report =
            verify::check_response(request, *repaired.result);
        EXPECT_TRUE(report.ok())
            << script.describe() << " -> " << report.to_string();
      }
      spliced_total += session.repair_stats().spliced;
    }
    EXPECT_GT(spliced_total, 0u) << "strategy " << to_string(s);
  }
}

TEST(SessionRepairTest, RepairedResponsesAreMarkedAndNeverCached) {
  EmbedEngine engine(repair_options());
  EmbedSession session(engine, 2, 8, FaultKind::kNode);
  const EmbedResponse base = session.current_ring();
  EXPECT_FALSE(base.repaired);  // first solve has no ring to splice
  const std::uint64_t entries = engine.cache_stats().entries;

  session.add_fault(3);
  const EmbedResponse spliced = session.current_ring();
  ASSERT_TRUE(spliced.result);
  EXPECT_TRUE(spliced.repaired);
  EXPECT_EQ(spliced.result->status, EmbedStatus::kOk);
  EXPECT_EQ(session.repair_stats().spliced, 1u);
  EXPECT_EQ(session.repair_stats().fell_back, 0u);
  // The splice may serve a different valid ring than a cold solve, so it
  // must never poison the engine's result cache.
  EXPECT_EQ(engine.cache_stats().entries, entries);
  const EmbedResponse stateless = engine.query([] {
    EmbedRequest req;
    req.base = 2;
    req.n = 8;
    req.fault_kind = FaultKind::kNode;
    req.faults = {3};
    return req;
  }());
  EXPECT_FALSE(stateless.cache_hit);
  EXPECT_FALSE(stateless.repaired);
}

TEST(SessionRepairTest, DefaultEngineKeepsBitIdenticalSessionAnswers) {
  // With the option off (the default), the session contract is unchanged:
  // answers are bit-identical to stateless queries, nothing is repaired.
  EmbedEngine engine;  // incremental_repair = false
  EmbedSession session(engine, 2, 8, FaultKind::kNode);
  session.current_ring();
  session.add_fault(3);
  const EmbedResponse solved = session.current_ring();
  EXPECT_FALSE(solved.repaired);
  EXPECT_EQ(session.repair_stats().spliced, 0u);
  EXPECT_EQ(session.repair_stats().fell_back, 0u);
}

TEST(SessionRepairTest, ValidateResponsesNeverRejectsASplice) {
  EngineOptions options = repair_options();
  options.validate_responses = true;
  std::uint64_t spliced = 0;
  for (Strategy s : {Strategy::kFfc, Strategy::kMixed}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const ChurnScript script = verify::make_churn_script(seed + 40, s, 20);
      EmbedEngine engine(options);
      EmbedSession session(engine, script.base_request.base,
                           script.base_request.n,
                           script.base_request.fault_kind,
                           script.base_request.strategy);
      for (const ChurnEvent& event : script.events) {
        apply(session, event);
        session.current_ring();
      }
      EXPECT_EQ(session.repair_stats().oracle_rejections, 0u)
          << script.describe();
      spliced += session.repair_stats().spliced;
    }
  }
  EXPECT_GT(spliced, 0u);
}

}  // namespace
}  // namespace dbr::service

namespace dbr::sim {
namespace {

using service::EmbedEngine;
using service::EmbedSession;
using service::EngineOptions;
using service::FaultKind;
using service::Strategy;

TEST(SessionDriverRepairTest, DriveScriptCountsRepairedRings) {
  const verify::ChurnScript script =
      verify::make_churn_script(2, Strategy::kFfc, 24);
  const WordSpace ws(script.base_request.base, script.base_request.n);
  const DeBruijnDigraph graph(ws);
  Engine net(ws.size(),
             [&graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });
  EngineOptions options;
  options.incremental_repair = true;
  EmbedEngine engine(options);
  EmbedSession session(engine, script.base_request.base,
                       script.base_request.n, FaultKind::kNode,
                       Strategy::kFfc);
  SessionDriver driver(net, session);
  const ChurnDriveStats stats = drive_script(driver, script);
  EXPECT_GT(stats.repaired_rings, 0u) << script.describe();
  EXPECT_EQ(stats.repaired_rings, session.repair_stats().spliced);
  // The composed layers still agree: the last ring avoids every dead node.
  const auto& ring = driver.current_ring();
  ASSERT_TRUE(ring.result);
  for (Word v : ring.result->ring.nodes) EXPECT_TRUE(net.alive(v));
}

}  // namespace
}  // namespace dbr::sim
