// Fixture with zero expected violations: the idiomatic forms of everything
// the bad fixtures get wrong, plus one justified suppression.

#include <memory>

#include "util/rcu_snapshot.hpp"
#include "util/thread_annotations.hpp"

namespace dbr::fixture {

struct Registry {
  using Map = int;
  util::RcuSnapshot<Map> cell_;
  util::RcuSnapshot<Map> other_;
  util::Mutex mu_;
  int guarded_ DBR_GUARDED_BY(mu_) = 0;

  void correct_update(std::shared_ptr<const Map> next) {
    {
      // Scoped: the guard dies before the publish below.
      util::RcuSnapshot<Map>::ReadGuard guard(cell_);
      if (!guard) return;
    }
    cell_.publish(std::move(next));
  }

  void cross_cell_update(std::shared_ptr<const Map> next) {
    // A live guard on a *different* cell never deadlocks the publish.
    util::RcuSnapshot<Map>::ReadGuard guard(other_);
    cell_.publish(std::move(next));
  }

  void bump() {
    const util::MutexLock lock(mu_);
    ++guarded_;
  }

  // lint:allow(naked-mutex): fixture demonstrating a justified suppression
  void legacy_interop(std::mutex& external) { external.lock(); }
};

}  // namespace dbr::fixture
