// Fixture: naked std lock primitives outside util/thread_annotations.hpp —
// invisible to -Wthread-safety, so the linter rejects them everywhere else.

#include <mutex>

namespace dbr::fixture {

struct Counter {
  // expect-violation: naked-mutex
  std::mutex mu;
  int value = 0;

  void bump() {
    // expect-violation: naked-mutex
    const std::lock_guard lock(mu);
    ++value;
  }
};

}  // namespace dbr::fixture
