// Fixture: opting a function out of the thread-safety analysis with no
// justification recorded next to the escape hatch.

#include "util/thread_annotations.hpp"

namespace dbr::fixture {

struct Unchecked {
  int value = 0;

  int read_racy() DBR_NO_THREAD_SAFETY_ANALYSIS { return value; }  // expect-violation: bare-analysis-escape
};

}  // namespace dbr::fixture
