// lint:pretend-path: src/verify/fixture_checker.cpp
// Fixture: the oracle importing the implementation it is supposed to check.

// expect-violation: verify-includes-core
#include "core/ffc.hpp"

namespace dbr::fixture {

int not_independent() { return 0; }

}  // namespace dbr::fixture
