// lint:pretend-path: src/core/ffc.cpp
// Fixture: a heap-allocating container constructed inside a
// SolveScratch-backed solve body — the regression the PR 7 allocation-free
// guarantee forbids. Reference bindings to scratch members stay legal.

#include <cstdint>
#include <vector>

namespace dbr::fixture {

struct SolveScratch {
  std::vector<std::uint32_t> comp;
};

int solve_ffc_like(SolveScratch& s) {
  std::vector<std::uint32_t>& comp = s.comp;  // allowed: reference binding
  // expect-violation: hot-path-heap-alloc
  std::vector<std::uint32_t> scratch_local(comp.size(), 0);
  return static_cast<int>(scratch_local.size());
}

}  // namespace dbr::fixture
