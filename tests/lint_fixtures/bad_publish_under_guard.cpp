// Fixture: the PR 8 fabric deadlock — publishing a cell while this thread's
// own ReadGuard still pins it. publish() may wait for readers to drain, and
// the caller's guard never will.

#include "util/rcu_snapshot.hpp"

namespace dbr::fixture {

struct Registry {
  using Map = int;
  util::RcuSnapshot<Map> cell_;

  void broken_update(std::shared_ptr<const Map> next) {
    util::RcuSnapshot<Map>::ReadGuard guard(cell_);
    if (!guard) return;
    // expect-violation: rcu-publish-under-guard
    cell_.publish(std::move(next));
  }
};

}  // namespace dbr::fixture
