// Stateful fault-churn sessions: any EmbedSession fault history must yield
// exactly the ring a fresh stateless query computes for the final fault set
// (oracle-validated), with the pinned context making re-solves
// precompute-free, and the sim/ driver composing the three layers.

#include <gtest/gtest.h>

#include <vector>

#include "service/engine.hpp"
#include "service/session.hpp"
#include "sim/session_driver.hpp"
#include "util/require.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

namespace dbr::service {
namespace {

constexpr Strategy kAllStrategies[] = {
    Strategy::kAuto,     Strategy::kFfc,     Strategy::kEdgeAuto,
    Strategy::kEdgeScan, Strategy::kEdgePhi, Strategy::kButterfly};

EmbedRequest request_for(const verify::ChurnScript& script,
                         std::vector<Word> faults) {
  EmbedRequest req = script.base_request;
  req.faults = std::move(faults);
  return req;
}

// --------------------------------------------------------------------------
// Churn scripts (the scenario generator's churn regime).

TEST(ChurnScriptTest, DeterministicFromSeedAndStrategy) {
  for (Strategy s : kAllStrategies) {
    const verify::ChurnScript a = verify::make_churn_script(7, s, 40);
    const verify::ChurnScript b = verify::make_churn_script(7, s, 40);
    EXPECT_EQ(a.base_request.base, b.base_request.base);
    EXPECT_EQ(a.base_request.n, b.base_request.n);
    EXPECT_EQ(a.events, b.events) << a.describe();
  }
}

TEST(ChurnScriptTest, EveryEventMutatesTheLiveSet) {
  for (Strategy s : kAllStrategies) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const verify::ChurnScript script = verify::make_churn_script(seed, s, 30);
      std::vector<Word> live;
      for (const verify::ChurnEvent& e : script.events) {
        const auto it = std::find(live.begin(), live.end(), e.fault);
        if (e.add) {
          ASSERT_EQ(it, live.end()) << script.describe();
          live.push_back(e.fault);
        } else {
          ASSERT_NE(it, live.end()) << script.describe();
          live.erase(it);
        }
      }
      EXPECT_EQ(script.final_faults().size(), live.size());
    }
  }
}

TEST(ChurnScriptTest, ExplicitInstanceOverloadClampsMaxLiveToTheWordSpace) {
  // B(2,2) has only 4 node words; a cap far above that must still terminate
  // and never hold more than the whole space live.
  EmbedRequest instance;
  instance.base = 2;
  instance.n = 2;
  instance.fault_kind = FaultKind::kNode;
  instance.strategy = Strategy::kFfc;
  const verify::ChurnScript script =
      verify::make_churn_script(5, instance, 60, /*max_live=*/50);
  EXPECT_EQ(script.events.size(), 60u);
  std::vector<Word> live;
  for (const verify::ChurnEvent& e : script.events) {
    if (e.add) {
      live.push_back(e.fault);
    } else {
      live.erase(std::find(live.begin(), live.end(), e.fault));
    }
    EXPECT_LE(live.size(), 4u);
    EXPECT_LT(e.fault, 4u);
  }
}

TEST(ChurnScriptTest, DescribeLeadsWithReproductionTuple) {
  const verify::ChurnScript script =
      verify::make_churn_script(3, Strategy::kFfc, 5);
  const std::string text = script.describe();
  EXPECT_NE(text.find("seed=3"), std::string::npos);
  EXPECT_NE(text.find("strategy=ffc"), std::string::npos);
}

// --------------------------------------------------------------------------
// Session-vs-stateless equivalence (oracle-validated).

TEST(EmbedSessionTest, AnyFaultHistoryMatchesStatelessQueryOnFinalSet) {
  for (Strategy s : kAllStrategies) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const verify::ChurnScript script = verify::make_churn_script(seed, s, 24);
      EmbedEngine engine;
      EmbedSession session(engine, script.base_request.base,
                           script.base_request.n,
                           script.base_request.fault_kind,
                           script.base_request.strategy);
      for (const verify::ChurnEvent& e : script.events) {
        if (e.add) {
          EXPECT_TRUE(session.add_fault(e.fault)) << script.describe();
        } else {
          EXPECT_TRUE(session.clear_fault(e.fault)) << script.describe();
        }
      }
      const EmbedResponse& churned = session.current_ring();

      EmbedEngine fresh;  // independent engine: no shared cache state
      const EmbedRequest final_request =
          request_for(script, script.final_faults());
      const EmbedResponse stateless = fresh.query(final_request);
      ASSERT_TRUE(churned.result && stateless.result);
      EXPECT_TRUE(churned.result->same_embedding(*stateless.result))
          << script.describe();

      const verify::OracleReport report =
          verify::check_response(final_request, *churned.result);
      EXPECT_TRUE(report.ok()) << script.describe() << " -> "
                               << report.to_string();
    }
  }
}

TEST(EmbedSessionTest, IntermediateRingsPassTheOracleAfterEveryEvent) {
  for (Strategy s : {Strategy::kFfc, Strategy::kEdgeAuto, Strategy::kButterfly}) {
    const verify::ChurnScript script = verify::make_churn_script(11, s, 16);
    EmbedEngine engine;
    EmbedSession session(engine, script.base_request.base,
                         script.base_request.n, script.base_request.fault_kind,
                         script.base_request.strategy);
    for (const verify::ChurnEvent& e : script.events) {
      if (e.add) {
        session.add_fault(e.fault);
      } else {
        session.clear_fault(e.fault);
      }
      const EmbedResponse& ring = session.current_ring();
      ASSERT_TRUE(ring.result);
      const verify::OracleReport report = verify::check_response(
          request_for(script, session.faults()), *ring.result);
      EXPECT_TRUE(report.ok()) << script.describe() << " -> "
                               << report.to_string();
    }
  }
}

// --------------------------------------------------------------------------
// Incremental behavior: memoization, result-cache reuse, pinned context.

TEST(EmbedSessionTest, UnchangedFaultSetIsMemoizedNotResolved) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  session.add_fault(3);
  session.current_ring();
  session.current_ring();
  session.current_ring();
  EXPECT_EQ(session.stats().solves, 1u);
  EXPECT_EQ(session.stats().memoized, 2u);
}

TEST(EmbedSessionTest, RevisitedFaultStateIsAResultCacheHit) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  session.add_fault(3);
  const EmbedResponse first = session.current_ring();
  EXPECT_FALSE(first.cache_hit);

  session.add_fault(9);
  session.current_ring();
  session.clear_fault(9);  // back to {3}
  const EmbedResponse revisited = session.current_ring();
  EXPECT_TRUE(revisited.cache_hit);
  EXPECT_EQ(revisited.result.get(), first.result.get());  // exact bytes
  EXPECT_EQ(session.stats().result_cache_hits, 1u);
  EXPECT_EQ(session.stats().adds, 2u);
  EXPECT_EQ(session.stats().removes, 1u);
}

TEST(EmbedSessionTest, ResolvesReuseThePinnedContextNotARebuild) {
  EmbedEngine engine;
  EmbedSession session(engine, 3, 4, FaultKind::kEdge);
  const auto baseline = engine.context_cache_stats();
  session.add_fault(5);
  session.current_ring();
  session.add_fault(17);
  session.current_ring();
  // No further context-cache traffic: the session solves on its pin.
  const auto after = engine.context_cache_stats();
  EXPECT_EQ(after.misses, baseline.misses);
  EXPECT_EQ(session.context().use_count() >= 1, true);
  // Both solves report context reuse.
  EXPECT_EQ(engine.serve_stats().context_hits, 2u);
  EXPECT_EQ(engine.serve_stats().context_misses, 0u);
}

TEST(EmbedSessionTest, PinnedContextSurvivesContextCacheClear) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  engine.context_cache().clear();
  session.add_fault(1);
  const EmbedResponse& ring = session.current_ring();
  ASSERT_TRUE(ring.result);
  EXPECT_EQ(ring.result->status, EmbedStatus::kOk);
}

TEST(EmbedSessionTest, NoopMutationsDoNotDirtyTheSession) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  session.add_fault(3);
  session.current_ring();
  EXPECT_FALSE(session.add_fault(3));    // already faulty
  EXPECT_FALSE(session.clear_fault(9));  // was never faulty
  session.current_ring();
  EXPECT_EQ(session.stats().solves, 1u);
  EXPECT_EQ(session.stats().noop_mutations, 2u);
}

TEST(EmbedSessionTest, ResetFaultsOnAnEmptySessionIsACheapNoop) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  const EmbedResponse first = session.current_ring();
  session.reset_faults();  // nothing to drop: must not dirty the session
  const EmbedResponse again = session.current_ring();
  EXPECT_EQ(session.stats().solves, 1u);
  EXPECT_EQ(session.stats().memoized, 1u);
  EXPECT_EQ(session.stats().noop_mutations, 1u);
  EXPECT_EQ(again.result.get(), first.result.get());  // memoized bytes
}

TEST(EmbedSessionTest, ChurnRoundTripBackToTheSolvedSetIsMemoized) {
  // Mutations that round-trip the canonical solve set (an add undone by a
  // clear before any solve ran) must serve the memoized answer without any
  // engine traffic, not force a spurious recompute.
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  session.add_fault(3);
  const EmbedResponse solved = session.current_ring();
  session.add_fault(9);
  session.clear_fault(9);  // back to {3} without an intervening solve
  const std::uint64_t queries_before = engine.serve_stats().queries;
  const EmbedResponse again = session.current_ring();
  EXPECT_EQ(engine.serve_stats().queries, queries_before);  // no engine call
  EXPECT_EQ(session.stats().solves, 1u);
  EXPECT_EQ(session.stats().memoized, 1u);
  EXPECT_EQ(again.result.get(), solved.result.get());
}

TEST(EmbedSessionTest, DominatedLinkChurnRoundTripIsMemoizedNotResolved) {
  // A mixed session keeps dominated cuts live (so a router repair can
  // resurface them), but cutting and restoring a link under a dead router
  // leaves the canonical solve set untouched — the memoized result must
  // survive without a spurious engine query.
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kMixed);
  session.add_fault(FaultKind::kNode, 3);
  const EmbedResponse solved = session.current_ring();
  const WordSpace& ws = session.context()->words();
  const Word dominated = ws.edge_word(3, 0);  // a link out of dead router 3
  session.add_fault(FaultKind::kEdge, dominated);
  const std::uint64_t queries_before = engine.serve_stats().queries;
  const EmbedResponse cut = session.current_ring();
  EXPECT_EQ(engine.serve_stats().queries, queries_before);
  EXPECT_EQ(cut.result.get(), solved.result.get());
  session.clear_fault(FaultKind::kEdge, dominated);
  const EmbedResponse restored = session.current_ring();
  EXPECT_EQ(engine.serve_stats().queries, queries_before);
  EXPECT_EQ(restored.result.get(), solved.result.get());
  EXPECT_EQ(session.stats().solves, 1u);
  EXPECT_EQ(session.stats().memoized, 2u);
}

TEST(EmbedSessionTest, ResetFaultsReturnsToTheFaultFreeRing) {
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode);
  const EmbedResponse fault_free = session.current_ring();
  session.add_fault(3);
  session.add_fault(7);
  session.current_ring();
  session.reset_faults();
  const EmbedResponse again = session.current_ring();
  ASSERT_TRUE(again.result && fault_free.result);
  EXPECT_TRUE(again.result->same_embedding(*fault_free.result));
  EXPECT_TRUE(session.faults().empty());
}

// --------------------------------------------------------------------------
// Constructor and mutation preconditions.

TEST(EmbedSessionTest, ConstructorRejectsInvalidInstances) {
  EmbedEngine engine;
  // Strategy/fault-kind mismatch.
  EXPECT_THROW(EmbedSession(engine, 2, 6, FaultKind::kEdge, Strategy::kFfc),
               precondition_error);
  EXPECT_THROW(EmbedSession(engine, 2, 6, FaultKind::kNode, Strategy::kEdgeScan),
               precondition_error);
  // gcd(d, n) != 1 for the butterfly lift.
  EXPECT_THROW(EmbedSession(engine, 2, 6, FaultKind::kEdge, Strategy::kButterfly),
               precondition_error);
  // n < 2 for edge strategies.
  EXPECT_THROW(EmbedSession(engine, 4, 1, FaultKind::kEdge, Strategy::kEdgePhi),
               precondition_error);
}

TEST(EmbedSessionTest, AddFaultRejectsOutOfRangeWords) {
  EmbedEngine engine;
  EmbedSession node_session(engine, 2, 6, FaultKind::kNode);
  EXPECT_THROW(node_session.add_fault(64), precondition_error);  // d^n = 64
  EmbedSession edge_session(engine, 2, 6, FaultKind::kEdge);
  edge_session.add_fault(64);  // valid edge word: limit is d^(n+1) = 128
  EXPECT_THROW(edge_session.add_fault(128), precondition_error);
}

}  // namespace
}  // namespace dbr::service

// --------------------------------------------------------------------------
// sim/ composition: fail-stop kill events drive the session.

namespace dbr::sim {
namespace {

using service::EmbedEngine;
using service::EmbedSession;
using service::EmbedStatus;
using service::FaultKind;
using service::Strategy;

Engine debruijn_network(const WordSpace& ws) {
  const DeBruijnDigraph graph(ws);
  return Engine(ws.size(),
                [graph](NodeId u, NodeId v) { return graph.has_edge(u, v); });
}

TEST(SessionDriverTest, KillsAndRepairsKeepNetworkAndSessionInSync) {
  const WordSpace ws(2, 6);
  Engine net = debruijn_network(ws);
  EmbedEngine engine;
  EmbedSession session(engine, 2, 6, FaultKind::kNode, Strategy::kFfc);
  SessionDriver driver(net, session);

  driver.kill(3);
  driver.kill(9);
  driver.repair(9);
  EXPECT_FALSE(net.alive(3));
  EXPECT_TRUE(net.alive(9));
  EXPECT_EQ(session.faults(), (std::vector<Word>{3}));
  EXPECT_EQ(driver.stats().kills, 2u);
  EXPECT_EQ(driver.stats().repairs, 1u);

  const auto& ring = driver.current_ring();
  ASSERT_TRUE(ring.result);
  ASSERT_EQ(ring.result->status, EmbedStatus::kOk);
  for (Word v : ring.result->ring.nodes) {
    EXPECT_TRUE(net.alive(v));  // the ring avoids every dead processor
  }
}

TEST(SessionDriverTest, DriveScriptComposesSimSessionAndVerifyLayers) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const verify::ChurnScript script =
        verify::make_churn_script(seed, Strategy::kFfc, 20);
    const WordSpace ws(script.base_request.base, script.base_request.n);
    Engine net = debruijn_network(ws);
    EmbedEngine engine;
    EmbedSession session(engine, script.base_request.base,
                         script.base_request.n, FaultKind::kNode,
                         Strategy::kFfc);
    SessionDriver driver(net, session);
    const ChurnDriveStats stats = drive_script(driver, script);

    EXPECT_EQ(stats.kills + stats.repairs, script.events.size())
        << script.describe();
    EXPECT_EQ(stats.rings_embedded + stats.no_embeddings,
              script.events.size());
    // The network's dead set equals the session's final fault set.
    const std::vector<Word> final_faults = script.final_faults();
    EXPECT_EQ(session.faults(), final_faults);
    for (Word v = 0; v < ws.size(); ++v) {
      const bool faulty = std::find(final_faults.begin(), final_faults.end(),
                                    v) != final_faults.end();
      EXPECT_EQ(net.alive(v), !faulty);
    }
    // The final ring is exactly the stateless answer, validated end-to-end.
    const auto& ring = driver.current_ring();
    ASSERT_TRUE(ring.result);
    service::EmbedRequest final_request = script.base_request;
    final_request.faults = final_faults;
    const verify::OracleReport report =
        verify::check_response(final_request, *ring.result);
    EXPECT_TRUE(report.ok()) << script.describe() << " -> "
                             << report.to_string();
  }
}

TEST(SessionDriverTest, RequiresNodeFaultSessionsAndMatchingSize) {
  const WordSpace ws(2, 6);
  Engine net = debruijn_network(ws);
  EmbedEngine engine;
  EmbedSession edge_session(engine, 2, 6, FaultKind::kEdge);
  EXPECT_THROW(SessionDriver(net, edge_session), precondition_error);
  EmbedSession mismatched(engine, 2, 8, FaultKind::kNode);
  EXPECT_THROW(SessionDriver(net, mismatched), precondition_error);
}

}  // namespace
}  // namespace dbr::sim
