#include <gtest/gtest.h>

#include <vector>

#include "core/disjoint_hc.hpp"
#include "core/ffc.hpp"
#include "service/engine.hpp"
#include "util/word.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

// The oracle itself must never include core/ or butterfly/; this test file
// may, because cross-checking the two independent derivations of psi, phi
// and the length envelopes is exactly the point of having both.

namespace dbr::verify {
namespace {

using service::EmbedEngine;
using service::EmbedRequest;
using service::EmbedResponse;
using service::EmbedResult;
using service::EmbedStatus;
using service::FaultKind;
using service::Strategy;

EmbedRequest node_request(Digit d, unsigned n, std::vector<Word> faults,
                          Strategy strategy = Strategy::kAuto) {
  EmbedRequest req;
  req.base = d;
  req.n = n;
  req.fault_kind = FaultKind::kNode;
  req.faults = std::move(faults);
  req.strategy = strategy;
  return req;
}

EmbedRequest edge_request(Digit d, unsigned n, std::vector<Word> faults,
                          Strategy strategy = Strategy::kAuto) {
  EmbedRequest req;
  req.base = d;
  req.n = n;
  req.fault_kind = FaultKind::kEdge;
  req.faults = std::move(faults);
  req.strategy = strategy;
  return req;
}

bool has_violation(const OracleReport& report, Violation code) {
  for (const Finding& f : report.findings) {
    if (f.code == code) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// The oracle's re-derived guarantees agree with the construction library.

TEST(OracleGuaranteeTest, PsiAndPhiMatchTheConstructionLibrary) {
  for (std::uint64_t d = 2; d <= 20; ++d) {
    EXPECT_EQ(psi_disjoint_cycles(d), core::psi(d)) << "psi(" << d << ")";
    EXPECT_EQ(phi_fault_budget(d), core::phi_edge_bound(d)) << "phi(" << d << ")";
    EXPECT_EQ(edge_fault_guarantee(Strategy::kEdgeAuto, d),
              core::max_tolerable_edge_faults(d))
        << "max_tolerable(" << d << ")";
    EXPECT_EQ(edge_fault_guarantee(Strategy::kEdgeScan, d), core::psi(d) - 1);
    EXPECT_EQ(edge_fault_guarantee(Strategy::kEdgePhi, d),
              core::phi_edge_bound(d));
  }
}

TEST(OracleGuaranteeTest, NodeEnvelopeMatchesFfcBounds) {
  const struct { Digit d; unsigned n; } instances[] = {
      {2, 5}, {2, 8}, {3, 4}, {4, 4}, {5, 3}, {7, 3}};
  for (const auto& g : instances) {
    for (std::uint64_t f = 0; f <= 6; ++f) {
      EXPECT_EQ(node_ring_length_envelope(g.d, g.n, f),
                core::ffc_cycle_length_bounds(g.d, g.n, f))
          << "B(" << g.d << "," << g.n << ") f=" << f;
    }
  }
}

TEST(OracleGuaranteeTest, LoopEdgeWordsAreRecognized) {
  const WordSpace ws(3, 4);
  // Loop words of B(3,4) are a^5: 0, 121, 242.
  EXPECT_TRUE(is_loop_edge_word(ws, 0));
  EXPECT_TRUE(is_loop_edge_word(ws, 121));
  EXPECT_TRUE(is_loop_edge_word(ws, 242));
  EXPECT_FALSE(is_loop_edge_word(ws, 1));
  EXPECT_FALSE(is_loop_edge_word(ws, 120));
  std::uint64_t loops = 0;
  for (Word e = 0; e < ws.edge_word_count(); ++e) {
    if (is_loop_edge_word(ws, e)) ++loops;
  }
  EXPECT_EQ(loops, 3u);  // exactly d loops in B(d,n)
}

// --------------------------------------------------------------------------
// Request precondition validation.

TEST(OracleRequestTest, AcceptsValidAndNamesViolatedPreconditions) {
  EXPECT_EQ(request_precondition_violation(node_request(3, 3, {5, 14})), "");
  EXPECT_EQ(request_precondition_violation(edge_request(3, 4, {25})), "");

  EXPECT_NE(request_precondition_violation(
                edge_request(2, 4, {1}, Strategy::kButterfly))
                .find("gcd"),
            std::string::npos);
  EXPECT_NE(request_precondition_violation(edge_request(3, 1, {1})).find("n >= 2"),
            std::string::npos);
  EXPECT_NE(request_precondition_violation(node_request(2, 3, {8})).find("out of range"),
            std::string::npos);
  EXPECT_NE(request_precondition_violation(
                edge_request(3, 3, {1}, Strategy::kFfc))
                .find("node faults"),
            std::string::npos);
  EXPECT_NE(request_precondition_violation(
                node_request(3, 3, {1}, Strategy::kEdgeScan))
                .find("edge faults"),
            std::string::npos);
}

TEST(OracleRequestTest, TotalNecklaceCoverageIsInvalid) {
  // B(2,2): necklaces {00}, {01,10}, {11}. Faults {0,1,3} cover everything.
  EXPECT_NE(request_precondition_violation(node_request(2, 2, {0, 1, 3}))
                .find("cover"),
            std::string::npos);
  // Leaving the {01,10} necklace alive keeps the request valid.
  EXPECT_EQ(request_precondition_violation(node_request(2, 2, {0, 3})), "");
}

// --------------------------------------------------------------------------
// End-to-end: engine answers pass, tampered answers fail.

TEST(OracleCheckTest, AcceptsEngineAnswersAcrossStrategies) {
  EmbedEngine engine;
  const std::vector<EmbedRequest> scenarios = {
      node_request(3, 3, {5, 14}),
      node_request(2, 7, {3}),
      node_request(3, 4, {}),
      edge_request(4, 4, {17, 200}),
      edge_request(3, 5, {}, Strategy::kEdgeScan),
      edge_request(3, 5, {7}, Strategy::kEdgePhi),
      edge_request(3, 4, {25}, Strategy::kButterfly),
      edge_request(5, 4, {}, Strategy::kButterfly),
  };
  for (const EmbedRequest& req : scenarios) {
    const EmbedResponse resp = engine.query(req);
    ASSERT_TRUE(resp.ok()) << resp.result->error;
    const OracleReport report = check_response(req, *resp.result);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
  // A legitimate beyond-guarantee kNoEmbedding also passes: psi(3)-1 = 0,
  // and edge word 7 lies on the scan family's only Hamiltonian cycle.
  const EmbedRequest beyond = edge_request(3, 5, {7}, Strategy::kEdgeScan);
  const EmbedResponse resp = engine.query(beyond);
  ASSERT_EQ(resp.result->status, EmbedStatus::kNoEmbedding);
  EXPECT_TRUE(check_response(beyond, *resp.result).ok());
}

TEST(OracleCheckTest, FlagsTamperedNodeRings) {
  EmbedEngine engine;
  const EmbedRequest req = node_request(3, 3, {5, 14});
  const EmbedResponse resp = engine.query(req);
  ASSERT_TRUE(resp.ok());

  {
    EmbedResult tampered = *resp.result;
    std::swap(tampered.ring.nodes[1], tampered.ring.nodes[5]);
    EXPECT_TRUE(has_violation(check_response(req, tampered), Violation::kNotAnEdge));
  }
  {
    EmbedResult tampered = *resp.result;
    tampered.ring_length += 1;
    EXPECT_TRUE(has_violation(check_response(req, tampered),
                              Violation::kLengthMismatch));
  }
  {
    EmbedResult tampered = *resp.result;
    tampered.lower_bound += 1;
    EXPECT_TRUE(has_violation(check_response(req, tampered),
                              Violation::kBoundsMismatch));
  }
  {
    EmbedResult tampered = *resp.result;
    tampered.ring.nodes.push_back(tampered.ring.nodes.front());
    tampered.ring_length = tampered.ring.nodes.size();
    EXPECT_TRUE(has_violation(check_response(req, tampered),
                              Violation::kRepeatedNode));
  }
  {
    // Declaring a visited node faulty must trip the avoidance check.
    EmbedRequest hostile = req;
    hostile.faults.push_back(resp.result->ring.nodes.front());
    EXPECT_TRUE(has_violation(check_response(hostile, *resp.result),
                              Violation::kTouchesFaultyNode));
  }
}

TEST(OracleCheckTest, FlagsFaultyEdgeUseAndMissingNodes) {
  EmbedEngine engine;
  const EmbedRequest clean = edge_request(3, 4, {});
  const EmbedResponse resp = engine.query(clean);
  ASSERT_TRUE(resp.ok());
  const WordSpace ws(3, 4);

  {
    // Same ring, but now one of its own edges is declared faulty.
    EmbedRequest hostile = clean;
    const Word u = resp.result->ring.nodes[0];
    const Word v = resp.result->ring.nodes[1];
    hostile.faults.push_back(ws.edge_word(u, ws.tail(v)));
    EXPECT_TRUE(has_violation(check_response(hostile, *resp.result),
                              Violation::kUsesFaultyEdge));
  }
  {
    EmbedResult tampered = *resp.result;
    tampered.ring.nodes.pop_back();
    tampered.ring_length = tampered.ring.nodes.size();
    const OracleReport report = check_response(clean, tampered);
    EXPECT_TRUE(has_violation(report, Violation::kNotHamiltonian));
  }
}

TEST(OracleCheckTest, FlagsTamperedButterflyRings) {
  EmbedEngine engine;
  const EmbedRequest req = edge_request(3, 4, {25}, Strategy::kButterfly);
  const EmbedResponse resp = engine.query(req);
  ASSERT_TRUE(resp.ok());
  ASSERT_TRUE(check_response(req, *resp.result).ok());

  EmbedResult tampered = *resp.result;
  std::swap(tampered.ring.nodes[2], tampered.ring.nodes[40]);
  EXPECT_TRUE(has_violation(check_response(req, tampered), Violation::kNotAnEdge));
}

TEST(OracleCheckTest, FlagsStatusInconsistencies) {
  // kNoEmbedding within guarantee: one fault, psi(4)-1 = 2 >= 1.
  {
    EmbedResult fake;
    fake.status = EmbedStatus::kNoEmbedding;
    fake.strategy_used = Strategy::kEdgeAuto;
    fake.error = "fabricated";
    EXPECT_TRUE(has_violation(check_response(edge_request(4, 4, {17}), fake),
                              Violation::kGuaranteeBroken));
  }
  // Valid request rejected.
  {
    EmbedResult fake;
    fake.status = EmbedStatus::kBadRequest;
    fake.strategy_used = Strategy::kFfc;
    fake.error = "fabricated";
    EXPECT_TRUE(has_violation(check_response(node_request(3, 3, {5}), fake),
                              Violation::kValidRequestRejected));
  }
  // Invalid request answered kOk.
  {
    EmbedEngine engine;
    const EmbedResponse good = engine.query(node_request(3, 3, {5}));
    ASSERT_TRUE(good.ok());
    const EmbedRequest invalid =
        edge_request(2, 4, {1}, Strategy::kButterfly);  // gcd(2,4) != 1
    EXPECT_TRUE(has_violation(check_response(invalid, *good.result),
                              Violation::kRequestNotRejected));
  }
  // Wrong strategy claimed for the resolved request.
  {
    EmbedEngine engine;
    const EmbedRequest req = node_request(3, 3, {5});
    const EmbedResponse resp = engine.query(req);
    ASSERT_TRUE(resp.ok());
    EmbedResult tampered = *resp.result;
    tampered.strategy_used = Strategy::kEdgeAuto;
    EXPECT_TRUE(has_violation(check_response(req, tampered),
                              Violation::kWrongStrategy));
  }
}

// --------------------------------------------------------------------------
// Scenario generator basics (the sweep semantics live in
// test_fuzz_scenarios.cpp).

TEST(ScenarioTest, PureFunctionOfSeedAndStrategy) {
  for (const Strategy strategy :
       {Strategy::kAuto, Strategy::kFfc, Strategy::kEdgeAuto,
        Strategy::kEdgeScan, Strategy::kEdgePhi, Strategy::kButterfly}) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
      const Scenario a = make_scenario(seed, strategy);
      const Scenario b = make_scenario(seed, strategy);
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.regime, b.regime);
      EXPECT_EQ(a.request.base, b.request.base);
      EXPECT_EQ(a.request.n, b.request.n);
      EXPECT_EQ(a.request.fault_kind, b.request.fault_kind);
      EXPECT_EQ(a.request.strategy, b.request.strategy);
      EXPECT_EQ(a.request.faults, b.request.faults);
      EXPECT_EQ(a.describe(), b.describe());
    }
  }
}

TEST(ScenarioTest, EveryScenarioIsAValidRequest) {
  for (const Strategy strategy :
       {Strategy::kAuto, Strategy::kFfc, Strategy::kEdgeAuto,
        Strategy::kEdgeScan, Strategy::kEdgePhi, Strategy::kButterfly}) {
    for (const Scenario& sc : make_sweep(7, strategy, 150)) {
      EXPECT_EQ(request_precondition_violation(sc.request), "")
          << sc.describe();
      if (strategy == Strategy::kFfc) {
        EXPECT_EQ(sc.request.fault_kind, FaultKind::kNode);
      } else if (strategy != Strategy::kAuto) {
        EXPECT_EQ(sc.request.fault_kind, FaultKind::kEdge);
      }
    }
  }
}

TEST(ScenarioTest, DescribeLeadsWithTheReproductionTuple) {
  const Scenario sc = make_scenario(42, Strategy::kEdgeScan);
  const std::string text = sc.describe();
  EXPECT_EQ(text.find("(seed=42, base="), 0u) << text;
  EXPECT_NE(text.find("strategy=edge_scan"), std::string::npos) << text;
}

}  // namespace
}  // namespace dbr::verify
