// The context/solve split must be invisible in the answers: every
// context-backed solve returns exactly what the from-scratch construction
// returns, and the lazily built sections agree with their on-demand
// counterparts.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/butterfly_embedding.hpp"
#include "core/disjoint_hc.hpp"
#include "core/edge_fault.hpp"
#include "core/ffc.hpp"
#include "core/instance_context.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr::core {
namespace {

struct Shape {
  Digit d;
  unsigned n;
};

constexpr Shape kShapes[] = {{2, 6}, {2, 8}, {3, 4}, {4, 4}, {5, 3}, {6, 3}};

std::vector<Word> random_edge_faults(Rng& rng, const WordSpace& ws,
                                     std::uint64_t count) {
  std::vector<Word> out;
  for (std::uint64_t v : rng.sample_distinct(ws.edge_word_count(), count)) {
    out.push_back(v);
  }
  return out;
}

TEST(InstanceContextTest, NecklaceTableMatchesWordSpace) {
  for (const Shape s : kShapes) {
    const InstanceContext ctx(s.d, s.n);
    const WordSpace& ws = ctx.words();
    const NecklaceTable& table = ctx.necklaces();
    ASSERT_EQ(table.min_rot.size(), ws.size());
    std::vector<Word> expected_reps;
    for (Word x = 0; x < ws.size(); ++x) {
      EXPECT_EQ(table.min_rot[x], ws.min_rotation(x));
      if (ws.min_rotation(x) == x) expected_reps.push_back(x);
    }
    EXPECT_EQ(table.reps, expected_reps);
    EXPECT_TRUE(std::is_sorted(table.reps.begin(), table.reps.end()));
  }
}

TEST(InstanceContextTest, PsiFamilyIndexMatchesTheSequentialScan) {
  Rng rng(2026);
  for (const Shape s : kShapes) {
    const InstanceContext ctx(s.d, s.n);
    const WordSpace& ws = ctx.words();
    const PsiFamilyIndex& family = ctx.psi_family();
    const std::vector<SymbolCycle> rebuilt =
        disjoint_hamiltonian_cycles(s.d, s.n);
    ASSERT_EQ(family.cycles.size(), rebuilt.size());
    for (std::size_t i = 0; i < rebuilt.size(); ++i) {
      EXPECT_EQ(family.cycles[i], rebuilt[i]);
    }
    // first_avoiding == index of the first cycle passing avoids_edges, for
    // fault sets of every size including beyond-guarantee ones.
    for (std::uint64_t f = 0; f <= family.cycles.size() + 2; ++f) {
      const std::vector<Word> faults = random_edge_faults(rng, ws, f);
      std::optional<std::size_t> slow;
      for (std::size_t i = 0; i < rebuilt.size(); ++i) {
        if (avoids_edges(ws, rebuilt[i], faults)) {
          slow = i;
          break;
        }
      }
      EXPECT_EQ(family.first_avoiding(faults), slow)
          << "d=" << s.d << " n=" << s.n << " f=" << f;
    }
  }
}

TEST(InstanceContextTest, SolveFfcMatchesTheStandaloneSolver) {
  Rng rng(7);
  for (const Shape s : kShapes) {
    const InstanceContext ctx(s.d, s.n);
    const FfcSolver standalone{DeBruijnDigraph(ctx.words())};
    for (std::uint64_t f = 0; f <= 3; ++f) {
      std::vector<Word> faults;
      for (std::uint64_t v : rng.sample_distinct(ctx.words().size(), f)) {
        faults.push_back(v);
      }
      const FfcResult via_ctx = solve_ffc(ctx, faults);
      const FfcResult direct = standalone.solve(faults);
      EXPECT_EQ(via_ctx.cycle, direct.cycle);
      EXPECT_EQ(via_ctx.root, direct.root);
      EXPECT_EQ(via_ctx.bstar_size, direct.bstar_size);
      EXPECT_EQ(via_ctx.tree_edges, direct.tree_edges);
      EXPECT_EQ(via_ctx.modified_edges, direct.modified_edges);
    }
  }
}

TEST(InstanceContextTest, EdgeSolvesMatchTheFromScratchConstructions) {
  Rng rng(99);
  for (const Shape s : kShapes) {
    const InstanceContext ctx(s.d, s.n);
    const WordSpace& ws = ctx.words();
    for (std::uint64_t f = 0; f <= max_tolerable_edge_faults(s.d) + 2; ++f) {
      const std::vector<Word> faults = random_edge_faults(rng, ws, f);
      EXPECT_EQ(solve_edge_scan(ctx, faults),
                fault_free_hc_family_scan(s.d, s.n, faults));
      EXPECT_EQ(solve_edge_phi(ctx, faults),
                fault_free_hc_phi_construction(s.d, s.n, faults));
      EXPECT_EQ(solve_edge_auto(ctx, faults),
                fault_free_hamiltonian_cycle(s.d, s.n, faults));
    }
  }
}

TEST(InstanceContextTest, SolveButterflyMatchesTheStandaloneConstruction) {
  for (const Shape s : {Shape{2, 5}, Shape{3, 4}, Shape{5, 4}}) {
    const InstanceContext ctx(s.d, s.n);
    ASSERT_TRUE(ctx.supports_butterfly());
    const ButterflyDigraph& bf = ctx.butterfly();
    // A couple of genuine butterfly edges as faults.
    std::vector<std::pair<NodeId, NodeId>> faults;
    bf.for_each_successor(0, [&](NodeId v) {
      if (faults.empty()) faults.emplace_back(0, v);
    });
    const auto via_ctx = solve_butterfly(ctx, faults);
    const auto direct = butterfly_fault_free_hc(bf, faults);
    ASSERT_EQ(via_ctx.has_value(), direct.has_value());
    if (via_ctx.has_value()) {
      EXPECT_EQ(*via_ctx, *direct);
    }
  }
}

TEST(InstanceContextTest, MaximalFamilyCoversExactlyThePrimePowerFactors) {
  const InstanceContext ctx(6, 3);  // 6 = 2 * 3
  EXPECT_NO_THROW(ctx.maximal_family(2));
  EXPECT_NO_THROW(ctx.maximal_family(3));
  EXPECT_THROW(ctx.maximal_family(6), precondition_error);
  EXPECT_THROW(ctx.maximal_family(5), precondition_error);
}

TEST(InstanceContextTest, UnsupportedSectionsFailFast) {
  const InstanceContext no_edges(3, 1);  // n < 2: no edge-fault machinery
  EXPECT_FALSE(no_edges.supports_edge_faults());
  EXPECT_THROW(no_edges.psi_family(), precondition_error);
  const InstanceContext no_lift(2, 6);  // gcd(2, 6) != 1
  EXPECT_FALSE(no_lift.supports_butterfly());
  EXPECT_THROW(no_lift.butterfly(), precondition_error);
}

}  // namespace
}  // namespace dbr::core
