#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"
#include "graph/euler.hpp"
#include "graph/longest_cycle.hpp"
#include "graph/union_find.hpp"
#include "util/require.hpp"

namespace dbr {
namespace {

using Edge = std::pair<NodeId, NodeId>;

Digraph cycle_graph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return Digraph::from_edges(n, edges);
}

TEST(Digraph, CsrConstruction) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 2}};
  const Digraph g = Digraph::from_edges(3, edges);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 5u);
  const auto s0 = g.successors(0);
  EXPECT_EQ(std::vector<NodeId>(s0.begin(), s0.end()), (std::vector<NodeId>{1, 2}));
  const auto s2 = g.successors(2);
  EXPECT_EQ(std::vector<NodeId>(s2.begin(), s2.end()), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(g.in_degrees(), (std::vector<std::uint64_t>{1, 1, 3}));
  EXPECT_EQ(g.out_degrees(), (std::vector<std::uint64_t>{2, 1, 2}));
}

TEST(Digraph, ParallelEdgesPreserved) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {1, 0}};
  const Digraph g = Digraph::from_edges(2, edges);
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Digraph, ReversedTransposesEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {0, 2}};
  const Digraph g = Digraph::from_edges(3, edges);
  const Digraph r = g.reversed();
  auto sorted = r.edge_list();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Edge>{{0, 2}, {1, 0}, {2, 0}, {2, 1}}));
}

TEST(Digraph, EdgeEndpointValidation) {
  const std::vector<Edge> bad{{0, 5}};
  EXPECT_THROW((void)Digraph::from_edges(3, bad), precondition_error);
}

TEST(Bfs, DistancesOnCycle) {
  const Digraph g = cycle_graph(6);
  const auto r = bfs(g, 2);
  EXPECT_EQ(r.dist[2], 0u);
  EXPECT_EQ(r.dist[3], 1u);
  EXPECT_EQ(r.dist[1], 5u);
  EXPECT_EQ(r.eccentricity(), 5u);
  EXPECT_EQ(r.reached(), 6u);
}

TEST(Bfs, MinParentTieBreak) {
  // Node 3 is reachable in one step from both 1 and 2; parent must be 1.
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const Digraph g = Digraph::from_edges(4, edges);
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.dist[3], 2u);
  EXPECT_EQ(r.parent[3], 1u);
  EXPECT_EQ(r.parent[0], kNoParent);
}

TEST(Bfs, ActiveMaskExcludesNodes) {
  const Digraph g = cycle_graph(5);
  const auto r = bfs(g, 0, [](NodeId v) { return v != 3; });
  EXPECT_EQ(r.dist[2], 2u);
  EXPECT_EQ(r.dist[3], kUnreached);
  EXPECT_EQ(r.dist[4], kUnreached);  // only reachable through 3
  EXPECT_EQ(r.reached(), 3u);
}

TEST(Bfs, LoopsIgnored) {
  const std::vector<Edge> edges{{0, 0}, {0, 1}};
  const Digraph g = Digraph::from_edges(2, edges);
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.dist[1], 1u);
}

TEST(WeakComponents, LabelsAreMinimumIds) {
  // Two components {0,1,2} and {3,4}; 5 isolated but active.
  const std::vector<Edge> edges{{0, 1}, {2, 1}, {3, 4}};
  const Digraph g = Digraph::from_edges(6, edges);
  const auto label = weak_components(g, [](NodeId) { return true; });
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[1], 0u);
  EXPECT_EQ(label[2], 0u);
  EXPECT_EQ(label[3], 3u);
  EXPECT_EQ(label[4], 3u);
  EXPECT_EQ(label[5], 5u);
}

TEST(WeakComponents, InactiveNodesCutPaths) {
  const Digraph g = cycle_graph(6);
  const auto label = weak_components(g, [](NodeId v) { return v != 0 && v != 3; });
  EXPECT_EQ(label[0], kNoParent);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[4], label[5]);
  EXPECT_NE(label[1], label[4]);
}

TEST(Balance, DetectsImbalance) {
  EXPECT_TRUE(is_balanced(cycle_graph(4), [](NodeId) { return true; }));
  const std::vector<Edge> edges{{0, 1}, {0, 2}};
  const Digraph g = Digraph::from_edges(3, edges);
  EXPECT_FALSE(is_balanced(g, [](NodeId) { return true; }));
}

TEST(Scc, CycleIsOneComponent) {
  const auto r = strongly_connected_components(cycle_graph(5));
  EXPECT_EQ(r.count, 1u);
}

TEST(Scc, DagIsAllSingletons) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const auto r = strongly_connected_components(Digraph::from_edges(3, edges));
  EXPECT_EQ(r.count, 3u);
}

TEST(Scc, MixedComponents) {
  // {0,1,2} strongly connected, {3} and {4} singletons with 3->4.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}};
  const auto r = strongly_connected_components(Digraph::from_edges(5, edges));
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_NE(r.component[3], r.component[4]);
}

TEST(UnionFindTest, MergesAndSizes) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.set_size(2), 3u);
  EXPECT_EQ(uf.set_size(3), 1u);
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(4));
}

TEST(Euler, CycleGraphCircuit) {
  const Digraph g = cycle_graph(5);
  EXPECT_TRUE(has_eulerian_circuit(g));
  const auto circuit = eulerian_circuit(g);
  EXPECT_EQ(circuit.size(), 5u);
}

TEST(Euler, FigureEightCircuit) {
  // Two triangles sharing node 0: Eulerian, 6 edges.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}};
  const Digraph g = Digraph::from_edges(5, edges);
  const auto circuit = eulerian_circuit(g);
  ASSERT_EQ(circuit.size(), 6u);
  // Verify the circuit actually traverses distinct edges of g.
  std::vector<Edge> used;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    used.emplace_back(circuit[i], circuit[(i + 1) % circuit.size()]);
  }
  std::sort(used.begin(), used.end());
  auto expect = edges;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(used, expect);
}

TEST(Euler, RejectsUnbalanced) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Digraph g = Digraph::from_edges(3, edges);
  EXPECT_FALSE(has_eulerian_circuit(g));
  EXPECT_THROW((void)eulerian_circuit(g), precondition_error);
}

TEST(Euler, RejectsDisconnectedSupport) {
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  const Digraph g = Digraph::from_edges(4, edges);
  EXPECT_FALSE(has_eulerian_circuit(g));
}

TEST(Euler, EmptyGraphHasEmptyCircuit) {
  const Digraph g = Digraph::from_edges(3, std::vector<Edge>{});
  EXPECT_TRUE(has_eulerian_circuit(g));
  EXPECT_TRUE(eulerian_circuit(g).empty());
}

TEST(LineGraph, CycleIsSelfSimilar) {
  // The line graph of a directed n-cycle is again a directed n-cycle.
  const Digraph l = line_graph(cycle_graph(7));
  EXPECT_EQ(l.num_nodes(), 7u);
  EXPECT_EQ(l.num_edges(), 7u);
  const auto r = strongly_connected_components(l);
  EXPECT_EQ(r.count, 1u);
}

TEST(LineGraph, DegreeStructure) {
  // In L(G), the out-degree of edge (u,v) equals outdeg_G(v).
  const std::vector<Edge> edges{{0, 1}, {1, 0}, {1, 2}, {2, 0}};
  const Digraph g = Digraph::from_edges(3, edges);
  const Digraph l = line_graph(g);
  EXPECT_EQ(l.num_nodes(), 4u);
  const auto el = g.edge_list();
  const auto out = g.out_degrees();
  for (std::uint64_t k = 0; k < el.size(); ++k) {
    EXPECT_EQ(l.successors(k).size(), out[el[k].second]);
  }
}

TEST(LongestCycle, SimpleCases) {
  EXPECT_EQ(longest_cycle_bruteforce(cycle_graph(6)), 6u);
  // A DAG has no cycle.
  const std::vector<Edge> dag{{0, 1}, {1, 2}};
  EXPECT_EQ(longest_cycle_bruteforce(Digraph::from_edges(3, dag)), 0u);
  // Loop counts as a 1-cycle.
  const std::vector<Edge> loop{{0, 0}};
  EXPECT_EQ(longest_cycle_bruteforce(Digraph::from_edges(1, loop)), 1u);
}

TEST(LongestCycle, RespectsActiveMask) {
  const Digraph g = cycle_graph(5);
  std::vector<bool> active(5, true);
  active[2] = false;
  EXPECT_EQ(longest_cycle_bruteforce(g, active), 0u);
}

TEST(LongestCycle, FindsLongerOfTwoCycles) {
  // 3-cycle {0,1,2} and 4-cycle {3,4,5,6} sharing no nodes.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 6}, {6, 3}};
  EXPECT_EQ(longest_cycle_bruteforce(Digraph::from_edges(7, edges)), 4u);
}

TEST(LongestCycle, CompleteDigraph) {
  // K5 (no loops): Hamiltonian, longest = 5.
  std::vector<Edge> edges;
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  EXPECT_EQ(longest_cycle_bruteforce(Digraph::from_edges(5, edges)), 5u);
}

}  // namespace
}  // namespace dbr
