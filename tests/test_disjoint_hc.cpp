#include "core/disjoint_hc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gf/poly.hpp"
#include "util/require.hpp"

namespace dbr::core {
namespace {

// --------------------------------------------------------------------------
// psi(d): Table 3.1 reproduces exactly.

TEST(Psi, Table31Exact) {
  // Table 3.1: psi(d) for 2 <= d <= 38.
  const std::vector<std::uint64_t> expected{
      /* d=2  */ 1,  1, 3,  2, 1,  3, 7,  4,  2, 5, 3, 7, 3, 2, 15, 9, 4, 9, 6,
      /* d=21 */ 3,  5, 11, 7, 12, 7, 13, 9,  15, 2, 15, 31, 5, 9, 6, 12, 19, 9};
  for (std::uint64_t d = 2; d <= 38; ++d) {
    EXPECT_EQ(psi(d), expected[d - 2]) << "psi(" << d << ")";
  }
}

TEST(Psi, Multiplicative) {
  EXPECT_EQ(psi(6), psi(2) * psi(3));
  EXPECT_EQ(psi(12), psi(4) * psi(3));
  EXPECT_EQ(psi(20), psi(4) * psi(5));
  EXPECT_EQ(psi(36), psi(4) * psi(9));
  EXPECT_EQ(psi(30), psi(2) * psi(3) * psi(5));
}

TEST(Psi, PowerOfTwoIsOptimal) {
  // Upper bound d-1 is met for powers of two (Section 3.2).
  for (std::uint64_t d : {2ull, 4ull, 8ull, 16ull, 32ull}) {
    EXPECT_EQ(psi(d), d - 1);
  }
}

TEST(Lemma35, ConditionsCoverAllOddPrimes) {
  // Lemma 3.5: at least one of (a), (b) holds for every odd prime.
  for (std::uint64_t p : {3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                          29ull, 31ull, 37ull, 41ull, 43ull, 47ull}) {
    EXPECT_TRUE(lemma35_condition_a(p) || lemma35_condition_b(p)) << p;
  }
}

TEST(Lemma35, KnownCases) {
  // Condition (a) iff p = +-3 (mod 8) (2 is a nonresidue).
  EXPECT_TRUE(lemma35_condition_a(3));
  EXPECT_TRUE(lemma35_condition_a(5));
  EXPECT_TRUE(lemma35_condition_a(13));
  EXPECT_FALSE(lemma35_condition_a(7));
  EXPECT_FALSE(lemma35_condition_a(17));
  // The paper notes p = 13 satisfies both (7 + 7^9 = 2 mod 13), while in Z_5
  // only (a) holds.
  EXPECT_TRUE(lemma35_condition_b(13));
  EXPECT_FALSE(lemma35_condition_b(5));
  // p = +-1 (mod 8) forces (b).
  EXPECT_TRUE(lemma35_condition_b(7));
  EXPECT_TRUE(lemma35_condition_b(17));
  EXPECT_TRUE(lemma35_condition_b(23));
  // psi(29) = 15 = (29+1)/2 in Table 3.1 requires (b) for 29 = 5 mod 8.
  EXPECT_TRUE(lemma35_condition_b(29));
}

TEST(PhiEdgeBound, KnownValues) {
  EXPECT_EQ(phi_edge_bound(2), 0u);
  EXPECT_EQ(phi_edge_bound(3), 1u);
  EXPECT_EQ(phi_edge_bound(5), 3u);       // prime power: d - 2
  EXPECT_EQ(phi_edge_bound(8), 6u);
  EXPECT_EQ(phi_edge_bound(6), 1u);       // 2 + 3 - 4
  EXPECT_EQ(phi_edge_bound(12), 3u);      // 4 + 3 - 4
  EXPECT_EQ(phi_edge_bound(30), 4u);      // 2 + 3 + 5 - 6
  EXPECT_EQ(phi_edge_bound(28), 7u);      // 4 + 7 - 4
}

TEST(MaxTolerable, Table32Exact) {
  // Table 3.2: MAX{psi(d)-1, phi(d)} for 2 <= d <= 35.
  const std::vector<std::uint64_t> expected{
      /* d=2  */ 0,  1, 2,  3, 1,  5, 6,  7,  3, 9, 3, 11, 5, 4, 14, 15, 7,
      /* d=19 */ 17, 5, 6,  9, 21, 7, 23, 11, 25, 8, 27, 4, 29, 30, 10, 15, 8};
  for (std::uint64_t d = 2; d <= 35; ++d) {
    EXPECT_EQ(max_tolerable_edge_faults(d), expected[d - 2]) << "d=" << d;
  }
}

TEST(MaxTolerable, D28IsTheSolePsiException) {
  // Section 3.3: for 2 <= d <= 35, d = 28 is the only d where psi(d)-1
  // exceeds phi(d).
  for (std::uint64_t d = 2; d <= 35; ++d) {
    if (d == 28) {
      EXPECT_GT(psi(d) - 1, phi_edge_bound(d));
    } else {
      EXPECT_LE(psi(d) - 1, phi_edge_bound(d));
    }
  }
}

// --------------------------------------------------------------------------
// Maximal cycle machinery and the paper's worked examples.

TEST(MaximalCycle, ShiftedFamilyPartitionsNonLoopEdges) {
  // Lemma 3.3 + the observation before Lemma 3.4: the d cycles {s + C}
  // partition the d(d^n - 1) non-loop edges.
  for (auto [q, n] : {std::pair<std::uint64_t, unsigned>{2, 4}, {3, 3}, {4, 2}, {5, 2}}) {
    const gf::Field field(q);
    const MaximalCycleFamily family(field, n);
    const WordSpace ws(static_cast<Digit>(q), n);
    std::set<Word> seen;
    for (gf::Field::Elem s = 0; s < q; ++s) {
      const SymbolCycle c = family.shifted_cycle(s);
      EXPECT_TRUE(is_cycle(ws, c));
      EXPECT_EQ(c.length(), ws.size() - 1);
      for (Word e : edge_words(ws, c)) {
        EXPECT_TRUE(seen.insert(e).second) << "duplicate edge across shifts";
        const auto [u, v] = ws.edge_endpoints(e);
        EXPECT_NE(u, v) << "shifted cycles avoid loops";
      }
    }
    EXPECT_EQ(seen.size(), q * (ws.size() - 1));
  }
}

TEST(MaximalCycle, Example34ExactSequences) {
  // Example 3.4: d = 5, n = 2, C from Example 3.1, f(x) = 2x (Strategy 3,
  // 2 = 3^3 in Z_5). H_1 and H_4 are printed in the paper.
  const gf::Field field(5);
  const MaximalCycleFamily family(field, 2, {3, 1});
  const SymbolCycle h1 = family.hamiltonian_cycle(1, 2);
  const SymbolCycle h4 = family.hamiltonian_cycle(4, field.mul(2, 4));
  const SymbolCycle expected_h1{{1, 2, 2, 0, 3, 0, 1, 1, 3, 3, 4, 0, 4,
                                 1, 0, 0, 2, 4, 2, 1, 4, 4, 3, 2, 3}};
  const SymbolCycle expected_h4{{4, 0, 0, 3, 1, 3, 4, 1, 1, 2, 3, 2, 4,
                                 3, 3, 0, 2, 0, 4, 4, 2, 2, 1, 0, 1}};
  EXPECT_EQ(h1, expected_h1);
  EXPECT_EQ(h4, expected_h4);
  const WordSpace ws(5, 2);
  EXPECT_TRUE(is_hamiltonian(ws, h1));
  EXPECT_TRUE(is_hamiltonian(ws, h4));
  EXPECT_TRUE(edges_disjoint(ws, h1, h4));
}

TEST(MaximalCycle, InsertionPairConsistency) {
  // insertion_pair and hamiltonian_cycle_at agree: the two new edge words
  // appear in H_s and the removed edge word does not.
  const gf::Field field(7);
  const MaximalCycleFamily family(field, 2);
  const WordSpace ws(7, 2);
  for (gf::Field::Elem s = 0; s < 7; ++s) {
    for (gf::Field::Elem alpha = 0; alpha < 7; ++alpha) {
      if (alpha == s) continue;
      const auto [e1, e2] = family.insertion_pair(s, alpha);
      const SymbolCycle h = family.hamiltonian_cycle_at(s, alpha);
      EXPECT_TRUE(is_hamiltonian(ws, h));
      const auto ews = edge_words(ws, h);
      const std::set<Word> edge_set(ews.begin(), ews.end());
      EXPECT_TRUE(edge_set.contains(e1));
      EXPECT_TRUE(edge_set.contains(e2));
    }
  }
}

TEST(MaximalCycle, RejectsNonPrimitiveTaps) {
  const gf::Field field(5);
  // x^2 + 2 is irreducible but not primitive: taps (a0, a1) = (-2, 0)...
  // a0 = 3, a1 = 0.
  EXPECT_THROW(MaximalCycleFamily(field, 2, {3, 0}), precondition_error);
}

// --------------------------------------------------------------------------
// The disjoint families themselves.

class DisjointFamily
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(DisjointFamily, CountHamiltonicityAndPairwiseDisjointness) {
  const auto [d, n] = GetParam();
  const WordSpace ws(static_cast<Digit>(d), n);
  const auto family = disjoint_hamiltonian_cycles(d, n);
  EXPECT_GE(family.size(), psi(d));
  for (const SymbolCycle& hc : family) {
    EXPECT_TRUE(is_hamiltonian(ws, hc));
  }
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = i + 1; j < family.size(); ++j) {
      EXPECT_TRUE(edges_disjoint(ws, family[i], family[j]))
          << "cycles " << i << " and " << j << " share an edge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DisjointFamily,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{2, 3},
                      std::pair<std::uint64_t, unsigned>{2, 6},
                      std::pair<std::uint64_t, unsigned>{3, 3},
                      std::pair<std::uint64_t, unsigned>{4, 2},
                      std::pair<std::uint64_t, unsigned>{4, 3},
                      std::pair<std::uint64_t, unsigned>{5, 2},
                      std::pair<std::uint64_t, unsigned>{5, 3},
                      std::pair<std::uint64_t, unsigned>{7, 2},
                      std::pair<std::uint64_t, unsigned>{8, 2},
                      std::pair<std::uint64_t, unsigned>{9, 2},
                      std::pair<std::uint64_t, unsigned>{13, 2},
                      std::pair<std::uint64_t, unsigned>{16, 2},
                      std::pair<std::uint64_t, unsigned>{6, 2},
                      std::pair<std::uint64_t, unsigned>{6, 3},
                      std::pair<std::uint64_t, unsigned>{10, 2},
                      std::pair<std::uint64_t, unsigned>{12, 2},
                      std::pair<std::uint64_t, unsigned>{15, 2}),
    [](const auto& pinfo) {
      return "B" + std::to_string(pinfo.param.first) + "_" +
             std::to_string(pinfo.param.second);
    });

TEST(Strategy1, PowerOfTwoFamilies) {
  // d = 4: 3 disjoint HCs (Example 3.2's count); d = 8: 7.
  for (auto [q, n] : {std::pair<std::uint64_t, unsigned>{4, 2}, {4, 3}, {8, 2}}) {
    const gf::Field field(q);
    const auto family = disjoint_hcs_prime_power(field, n);
    EXPECT_EQ(family.size(), q - 1);
  }
}

TEST(Strategy2, D13GetsSevenCycles) {
  // Example 3.3: {H_0, H_1, H_7^2, ...}: 7 = (13+1)/2 disjoint HCs.
  const gf::Field field(13);
  const auto family = disjoint_hcs_prime_power(field, 2);
  EXPECT_EQ(family.size(), 7u);
}

TEST(Strategy3, D5GetsTwoCycles) {
  const gf::Field field(5);
  const auto family = disjoint_hcs_prime_power(field, 2);
  EXPECT_EQ(family.size(), 2u);
}

// --------------------------------------------------------------------------
// Rees composition (Lemma 3.6 / Example 3.5).

TEST(Rees, Example35Exact) {
  const SymbolCycle a{{0, 0, 1, 1}};                    // HC in B(2,2)
  const SymbolCycle b{{0, 0, 2, 2, 1, 2, 0, 1, 1}};     // HC in B(3,2)
  const SymbolCycle expected{{0, 0, 5, 5, 1, 2, 3, 4, 1, 0, 3, 5,
                              2, 1, 5, 3, 1, 1, 3, 3, 2, 2, 4, 5,
                              0, 1, 4, 3, 0, 2, 5, 4, 2, 0, 4, 4}};
  const SymbolCycle got = rees_compose(a, b, 3);
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(is_hamiltonian(WordSpace(6, 2), got));
}

TEST(Rees, RequiresCoprimeLengths) {
  const SymbolCycle a{{0, 0, 1, 1}};
  EXPECT_THROW((void)rees_compose(a, a, 2), precondition_error);
}

TEST(Rees, ComposesAcrossThreeFactors) {
  // d = 30 = 2 * 3 * 5 at n = 2: psi(30) = 2 cycles, each Hamiltonian.
  const auto family = disjoint_hamiltonian_cycles(30, 2);
  EXPECT_GE(family.size(), 2u);
  const WordSpace ws(30, 2);
  for (const auto& hc : family) {
    EXPECT_TRUE(is_hamiltonian(ws, hc));
  }
  EXPECT_TRUE(edges_disjoint(ws, family[0], family[1]));
}

TEST(Preconditions, RejectsBadArguments) {
  EXPECT_THROW(psi(1), precondition_error);
  EXPECT_THROW(phi_edge_bound(0), precondition_error);
  EXPECT_THROW(disjoint_hamiltonian_cycles(2, 1), precondition_error);
  EXPECT_THROW(lemma35_condition_b(4), precondition_error);
  EXPECT_THROW(lemma35_condition_a(2), precondition_error);
}

}  // namespace
}  // namespace dbr::core
