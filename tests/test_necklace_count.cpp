#include "necklace/count.hpp"

#include <gtest/gtest.h>

#include "debruijn/necklaces.hpp"
#include "nt/numtheory.hpp"
#include "util/require.hpp"

namespace dbr::necklace {
namespace {

TEST(CountByLength, PaperExampleLength6InB2_12) {
  // Section 4.3: the number of necklaces of length 6 in B(2,12) is 9.
  EXPECT_EQ(necklaces_by_length(2, 12, 6), 9u);
}

TEST(CountTotal, PaperExampleTotalInB2_12) {
  // Section 4.3: the total number of necklaces in B(2,12) is 352.
  EXPECT_EQ(necklaces_total(2, 12), 352u);
}

TEST(CountByWeight, PaperExampleWeight4Length6) {
  // Section 4.3: necklaces of weight 4 and length 6 in B(2,12): 2.
  EXPECT_EQ(binary_weight_necklaces_by_length(12, 4, 6), 2u);
}

TEST(CountByWeight, PaperExampleWeight4Total) {
  // Section 4.3: total weight-4 necklaces in B(2,12): 43.
  EXPECT_EQ(binary_weight_necklaces_total(12, 4), 43u);
}

TEST(CountByWeightDary, PaperExampleB3_4) {
  // Section 4.3: necklaces of weight 4 and length 4 in B(3,4): 4.
  EXPECT_EQ(weight_necklaces_by_length(3, 4, 4, 4), 4u);
}

TEST(CountByType, MultinomialExample) {
  // Type [0,3,2,1] (the paper's example word 312211 has type [0,2,2,2]...
  // we use the documented 4-ary example): number of 4-ary 6-tuples of type
  // [0,3,2,1] is 6!/(0!3!2!1!) = 60.
  const std::vector<u64> type{0, 3, 2, 1};
  // Necklace count by Proposition 4.2 must match brute force below; here
  // just sanity check it is positive and at most 60/6.
  const u64 total = type_necklaces_total(4, 6, type);
  EXPECT_GE(total, 60u / 6);
  EXPECT_LE(total, 60u);
}

TEST(CountByLength, LengthMustDivideN) {
  EXPECT_THROW(necklaces_by_length(2, 12, 5), precondition_error);
}

TEST(CountByLength, SumOverLengthsEqualsTotal) {
  for (u64 d : {2ull, 3ull, 5ull}) {
    for (u64 n : {4ull, 6ull, 12ull}) {
      u64 sum = 0;
      for (u64 t : nt::divisors(n)) sum += necklaces_by_length(d, n, t);
      EXPECT_EQ(sum, necklaces_total(d, n));
    }
  }
}

TEST(CountByLength, WeightedSumRecoversAllNodes) {
  // sum_t t * (#necklaces of length t) == d^n.
  for (u64 d : {2ull, 3ull, 4ull}) {
    for (u64 n : {6ull, 8ull, 10ull}) {
      u64 sum = 0, total = 1;
      for (u64 i = 0; i < n; ++i) total *= d;
      for (u64 t : nt::divisors(n)) sum += t * necklaces_by_length(d, n, t);
      EXPECT_EQ(sum, total);
    }
  }
}

// ---------------------------------------------------------------------------
// Brute-force cross-validation over small (d, n).

struct BruteParams {
  u64 d;
  u64 n;
};

class BruteForceCompare : public ::testing::TestWithParam<BruteParams> {};

TEST_P(BruteForceCompare, ByLengthMatches) {
  const auto [d, n] = GetParam();
  const WordSpace ws(static_cast<Digit>(d), static_cast<unsigned>(n));
  for (u64 t : nt::divisors(n)) {
    EXPECT_EQ(necklaces_by_length(d, n, t),
              brute_count_by_length(ws, static_cast<unsigned>(t),
                                    [](Word) { return true; }))
        << "d=" << d << " n=" << n << " t=" << t;
  }
}

TEST_P(BruteForceCompare, TotalMatches) {
  const auto [d, n] = GetParam();
  const WordSpace ws(static_cast<Digit>(d), static_cast<unsigned>(n));
  EXPECT_EQ(necklaces_total(d, n),
            brute_count_total(ws, [](Word) { return true; }));
}

TEST_P(BruteForceCompare, ByWeightMatchesAllWeights) {
  const auto [d, n] = GetParam();
  const WordSpace ws(static_cast<Digit>(d), static_cast<unsigned>(n));
  for (u64 k = 0; k <= n * (d - 1); ++k) {
    const auto pred = [&ws, k](Word x) { return ws.weight(x) == k; };
    EXPECT_EQ(weight_necklaces_total(d, n, k), brute_count_total(ws, pred))
        << "d=" << d << " n=" << n << " k=" << k;
    for (u64 t : nt::divisors(n)) {
      EXPECT_EQ(weight_necklaces_by_length(d, n, k, t),
                brute_count_by_length(ws, static_cast<unsigned>(t), pred))
          << "d=" << d << " n=" << n << " k=" << k << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, BruteForceCompare,
    ::testing::Values(BruteParams{2, 1}, BruteParams{2, 6}, BruteParams{2, 12},
                      BruteParams{3, 4}, BruteParams{3, 6}, BruteParams{4, 4},
                      BruteParams{4, 6}, BruteParams{5, 4}, BruteParams{6, 3},
                      BruteParams{7, 3}),
    [](const auto& pinfo) {
      std::string name = "B";
      name += std::to_string(pinfo.param.d);
      name += '_';
      name += std::to_string(pinfo.param.n);
      return name;
    });

TEST(CountByType, BruteForceCrossCheck) {
  // Every type of B(3,6) with entries summing to 6.
  const WordSpace ws(3, 6);
  for (u64 k0 = 0; k0 <= 6; ++k0) {
    for (u64 k1 = 0; k0 + k1 <= 6; ++k1) {
      const u64 k2 = 6 - k0 - k1;
      const std::vector<u64> type{k0, k1, k2};
      const auto pred = [&](Word x) {
        return ws.count_digit(x, 0) == k0 && ws.count_digit(x, 1) == k1 &&
               ws.count_digit(x, 2) == k2;
      };
      EXPECT_EQ(type_necklaces_total(3, 6, type), brute_count_total(ws, pred))
          << k0 << "," << k1 << "," << k2;
      for (u64 t : nt::divisors(6)) {
        EXPECT_EQ(type_necklaces_by_length(3, 6, type, t),
                  brute_count_by_length(ws, static_cast<unsigned>(t), pred))
            << k0 << "," << k1 << "," << k2 << " t=" << t;
      }
    }
  }
}

TEST(CountByType, BinaryTypeReducesToWeight) {
  // In B(2,n), type [n-k, k] iff weight k (noted at the end of Chapter 4).
  for (u64 n : {4ull, 6ull, 12ull}) {
    for (u64 k = 0; k <= n; ++k) {
      const std::vector<u64> type{n - k, k};
      EXPECT_EQ(type_necklaces_total(2, n, type),
                binary_weight_necklaces_total(n, k));
    }
  }
}

TEST(CountByType, TypeVectorValidation) {
  const std::vector<u64> bad_sum{1, 2};  // sums to 3, n = 4
  EXPECT_THROW(type_necklaces_total(2, 4, bad_sum), precondition_error);
  const std::vector<u64> bad_size{1, 2, 1};
  EXPECT_THROW(type_necklaces_total(2, 4, bad_size), precondition_error);
}

TEST(CountGeneric, AllNecklacesViaEnumeration) {
  // all_necklaces() agrees with the closed formula for a mid-size graph.
  const WordSpace ws(3, 7);
  EXPECT_EQ(all_necklaces(ws).size(), necklaces_total(3, 7));
}

}  // namespace
}  // namespace dbr::necklace
