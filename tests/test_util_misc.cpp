#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/parallel.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace dbr {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"a", "longheader"});
  t.new_row().add(std::string("x")).add(42);
  t.new_row().add(1234567).add(3.14159, 3);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| longheader |"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);
  EXPECT_NE(s.find("1234567"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t({"x", "y"});
  t.new_row().add(1).add(2);
  t.new_row().add(std::string("a")).add(std::string("b"));
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\na,b\n");
}

TEST(TextTableTest, RowDisciplineEnforced) {
  TextTable t({"only"});
  EXPECT_THROW(t.add(1), precondition_error);  // add before new_row
  t.new_row().add(1);
  EXPECT_THROW(t.add(2), precondition_error);  // too many cells
  EXPECT_THROW(TextTable({}), precondition_error);
}

TEST(TextTableTest, NegativeAndDoubleFormats) {
  TextTable t({"v"});
  t.new_row().add(static_cast<std::int64_t>(-5));
  t.new_row().add(-2.5, 1);
  const std::string s = t.to_csv();
  EXPECT_NE(s.find("-5"), std::string::npos);
  EXPECT_NE(s.find("-2.5"), std::string::npos);
}

TEST(ParallelTest, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, BlocksPartitionExactly) {
  std::vector<std::atomic<int>> hits(777);
  parallel_blocks(777, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, ZeroAndOneItems) {
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) { EXPECT_EQ(i, 0u); ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelTest, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(100, [](std::size_t i) {
        if (i == 57) throw std::runtime_error("worker failure");
      }),
      std::runtime_error);
}

TEST(ParallelTest, WorkerCountPositive) { EXPECT_GE(worker_count(), 1u); }

TEST(RequireTest, ErrorTypesAndMessages) {
  try {
    require(false, "precondition text");
    FAIL() << "require did not throw";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("precondition text"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util_misc"), std::string::npos);
  }
  try {
    ensure(false, "invariant text");
    FAIL() << "ensure did not throw";
  } catch (const invariant_error& e) {
    EXPECT_NE(std::string(e.what()).find("invariant text"), std::string::npos);
  }
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_NO_THROW(ensure(true, "fine"));
}

TEST(RequireTest, PreconditionIsInvalidArgument) {
  // Callers may catch std::invalid_argument / std::logic_error generically.
  EXPECT_THROW(require(false, "x"), std::invalid_argument);
  EXPECT_THROW(ensure(false, "x"), std::logic_error);
}

}  // namespace
}  // namespace dbr
