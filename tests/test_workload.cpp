#include "workload.hpp"  // bench/ include dir (see CMakeLists tests loop)

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/word.hpp"
#include "verify/scenario.hpp"

// Direct coverage for the bench-only workload header: the Zipf sampler's
// skew shape, request-stream determinism, the multi-instance pool's
// ordering and edge_fraction behavior, and the TrafficMatrix flow shapes
// the traffic simulation injects. These generators feed CI gates
// (service-throughput, fabric and traffic smoke jobs), so their behavior
// is pinned here rather than only observed through bench output.

namespace dbr::bench {
namespace {

using verify::TrafficPattern;

bool same_request(const service::EmbedRequest& a,
                  const service::EmbedRequest& b) {
  return a.base == b.base && a.n == b.n && a.fault_kind == b.fault_kind &&
         a.strategy == b.strategy && a.faults == b.faults &&
         a.edge_faults == b.edge_faults;
}

// --- ZipfSampler ---

TEST(Workload, ZipfSkewConcentratesOnLowRanks) {
  constexpr std::size_t kRanks = 16;
  constexpr std::size_t kDraws = 20000;
  const auto head_share = [](double s) {
    ZipfSampler zipf(kRanks, s);
    Rng rng(7);
    std::size_t head = 0;
    for (std::size_t i = 0; i < kDraws; ++i) {
      if (zipf(rng) == 0) ++head;
    }
    return static_cast<double>(head) / kDraws;
  };
  const double uniform = head_share(0.0);
  const double skewed = head_share(1.0);
  const double heavy = head_share(2.5);
  // s = 0 degenerates to uniform: rank 0 draws its fair 1/16 share.
  EXPECT_NEAR(uniform, 1.0 / kRanks, 0.02);
  // Rising s concentrates mass on the head monotonically.
  EXPECT_GT(skewed, uniform + 0.1);
  EXPECT_GT(heavy, skewed + 0.1);
  EXPECT_GT(heavy, 0.7);  // s = 2.5 over 16 ranks is head-dominated
}

TEST(Workload, ZipfDrawsStayInRange) {
  ZipfSampler zipf(5, 1.0);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 5u);
}

// --- make_stream ---

TEST(Workload, StreamIsDeterministicForAFixedSeed) {
  Rng a(123), b(123);
  const auto sa = make_stream(a, 200, 16, 0.5, 1.0);
  const auto sb = make_stream(b, 200, 16, 0.5, 1.0);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_TRUE(same_request(sa[i], sb[i])) << "stream diverged at " << i;
  }
}

TEST(Workload, FullRepeatFractionDrawsOnlyFromTheHotPool) {
  Rng rng(5);
  const std::size_t unique = 8;
  const auto stream = make_stream(rng, 300, unique, 1.0);
  // Every request must be one of the pool entries: at most `unique`
  // distinct (base, n, faults) signatures appear.
  std::set<std::vector<std::uint64_t>> signatures;
  for (const auto& req : stream) {
    std::vector<std::uint64_t> sig{req.base, req.n,
                                   static_cast<std::uint64_t>(req.fault_kind)};
    sig.insert(sig.end(), req.faults.begin(), req.faults.end());
    signatures.insert(sig);
  }
  EXPECT_LE(signatures.size(), unique);
}

// --- make_instance_pool ---

TEST(Workload, InstancePoolIsSortedByNodeCountAndTruncates) {
  const auto pool = make_instance_pool(12);
  ASSERT_EQ(pool.size(), 12u);
  for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
    EXPECT_LE(WordSpace(pool[i].base, pool[i].n).size(),
              WordSpace(pool[i + 1].base, pool[i + 1].n).size());
  }
  // Oversized requests clamp to the full grid instead of failing.
  const auto all = make_instance_pool(10000);
  const auto again = make_instance_pool(10000);
  EXPECT_EQ(all.size(), again.size());
  EXPECT_GT(all.size(), 12u);
  // Entries are distinct instances.
  std::set<std::pair<std::uint64_t, unsigned>> seen;
  for (const auto& inst : all) seen.insert({inst.base, inst.n});
  EXPECT_EQ(seen.size(), all.size());
}

TEST(Workload, EdgeFractionOnlyTurnsWideBasesIntoEdgeSolves) {
  Rng rng(9);
  const auto stream = make_instance_stream(rng, 400, 12, 0.8, 0.0, 0, 0.0,
                                           /*edge_fraction=*/1.0);
  std::size_t edge = 0;
  for (const auto& req : stream) {
    if (req.fault_kind == service::FaultKind::kEdge) {
      ++edge;
      EXPECT_GE(req.base, 3u);  // base-2 instances never draw edge solves
    }
  }
  EXPECT_GT(edge, 0u);

  Rng rng2(9);
  const auto none = make_instance_stream(rng2, 400, 12, 0.8, 0.0, 0, 0.0,
                                         /*edge_fraction=*/0.0);
  for (const auto& req : none) {
    EXPECT_EQ(req.fault_kind, service::FaultKind::kNode);
  }
}

// --- TrafficMatrix ---

NodeCycle synthetic_ring(std::size_t k) {
  NodeCycle ring;
  ring.nodes.reserve(k);
  for (std::size_t i = 0; i < k; ++i) ring.nodes.push_back(i);
  return ring;
}

TEST(Workload, AllReduceCoversEveryRingMember) {
  const NodeCycle ring = synthetic_ring(40);
  Rng rng(3);
  const auto flows =
      TrafficMatrix{}.flows(ring, TrafficPattern::kRingAllReduce, rng);
  ASSERT_EQ(flows.size(), 40u);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].src, ring.nodes[i]);
    EXPECT_EQ(flows[i].dst, ring.nodes[(i + 1) % 40]);  // ring successor
  }
}

TEST(Workload, TokenStreamsTraverseTheWholeRing) {
  const NodeCycle ring = synthetic_ring(30);
  Rng rng(3);
  const auto flows =
      TrafficMatrix{}.flows(ring, TrafficPattern::kTokenStream, rng);
  ASSERT_LE(flows.size(), 4u);
  ASSERT_FALSE(flows.empty());
  for (const auto& f : flows) {
    // Destination is the source's ring predecessor: k-1 forward hops.
    const auto src_pos = static_cast<std::size_t>(
        std::find(ring.nodes.begin(), ring.nodes.end(), f.src) -
        ring.nodes.begin());
    EXPECT_EQ(f.dst, ring.nodes[(src_pos + 30 - 1) % 30]);
  }
}

TEST(Workload, HotspotAndIncastFanIntoOneDestination) {
  const NodeCycle ring = synthetic_ring(64);
  Rng rng(3);
  const auto hotspot =
      TrafficMatrix{}.flows(ring, TrafficPattern::kHotspot, rng);
  ASSERT_EQ(hotspot.size(), 32u);
  std::set<NodeId> hot_srcs;
  for (const auto& f : hotspot) {
    EXPECT_EQ(f.dst, hotspot.front().dst);
    EXPECT_NE(f.src, f.dst);
    hot_srcs.insert(f.src);
  }
  EXPECT_EQ(hot_srcs.size(), hotspot.size());  // sources are distinct
  // Hotspot staggers starts; incast synchronizes them.
  EXPECT_NE(hotspot.front().start_round, hotspot.back().start_round);

  Rng rng2(3);
  const auto incast = TrafficMatrix{}.flows(ring, TrafficPattern::kIncast, rng2);
  ASSERT_EQ(incast.size(), 16u);
  for (const auto& f : incast) {
    EXPECT_EQ(f.dst, incast.front().dst);
    EXPECT_EQ(f.start_round, incast.front().start_round);
  }
}

TEST(Workload, TrafficMatrixIsDeterministicAndWellFormed) {
  const NodeCycle ring = synthetic_ring(50);
  for (const TrafficPattern pattern :
       {TrafficPattern::kRingAllReduce, TrafficPattern::kTokenStream,
        TrafficPattern::kHotspot, TrafficPattern::kIncast,
        TrafficPattern::kUniform}) {
    Rng a(77), b(77);
    const auto fa = TrafficMatrix{}.flows(ring, pattern, a);
    const auto fb = TrafficMatrix{}.flows(ring, pattern, b);
    ASSERT_EQ(fa.size(), fb.size()) << verify::to_string(pattern);
    ASSERT_FALSE(fa.empty()) << verify::to_string(pattern);
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_EQ(fa[i].src, fb[i].src) << verify::to_string(pattern);
      EXPECT_EQ(fa[i].dst, fb[i].dst) << verify::to_string(pattern);
      EXPECT_EQ(fa[i].packets, fb[i].packets) << verify::to_string(pattern);
      EXPECT_EQ(fa[i].start_round, fb[i].start_round)
          << verify::to_string(pattern);
      EXPECT_NE(fa[i].src, fa[i].dst) << verify::to_string(pattern);
      // Every endpoint lies on the ring.
      EXPECT_TRUE(std::find(ring.nodes.begin(), ring.nodes.end(), fa[i].src) !=
                  ring.nodes.end());
      EXPECT_TRUE(std::find(ring.nodes.begin(), ring.nodes.end(), fa[i].dst) !=
                  ring.nodes.end());
    }
  }
  // A two-node ring still yields legal (src != dst) flows for every pattern.
  const NodeCycle tiny = synthetic_ring(2);
  for (const TrafficPattern pattern :
       {TrafficPattern::kRingAllReduce, TrafficPattern::kTokenStream,
        TrafficPattern::kHotspot, TrafficPattern::kIncast,
        TrafficPattern::kUniform}) {
    Rng rng(5);
    const auto flows = TrafficMatrix{}.flows(tiny, pattern, rng);
    for (const auto& f : flows) EXPECT_NE(f.src, f.dst);
  }
}

}  // namespace
}  // namespace dbr::bench
