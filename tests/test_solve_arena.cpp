#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ffc.hpp"
#include "core/instance_context.hpp"
#include "core/mixed_fault.hpp"
#include "core/solve_scratch.hpp"
#include "service/cache.hpp"
#include "service/context_cache.hpp"
#include "service/types.hpp"
#include "verify/scenario.hpp"

// Differential fuzz of the allocation-free solve path, plus hammer tests of
// the lock-free cache read paths.
//
// Part 1 sweeps the seeded scenario corpus (every strategy, so every fuzz
// regime from fault-free through mixed-correlated) and holds the
// scratch-arena solve bit-identical to the legacy allocation path, with ONE
// arena reused dirty across all scenarios and instance shapes — exactly the
// steady state a long-lived session or engine worker sees. Any stale-state
// leak between solves (an unreset epoch map, a mask sized for the previous
// instance) shows up as a field-level diff with the scenario's reproduction
// tuple attached.
//
// Part 2 hammers ShardedLruCache and ContextCache with concurrent readers
// against a mutating writer (put/clear). The readers' hit path takes no
// mutex, so these tests are the ThreadSanitizer surface for the RCU
// snapshots; value integrity is asserted from key-derived invariants.
//
// Knobs (env): DBR_FUZZ_SCENARIOS  scenarios per strategy (default 200)
//              DBR_FUZZ_SEED       base seed              (default 20260729)

namespace dbr {
namespace {

using core::FfcResult;
using core::FfcSolver;
using core::InstanceContext;
using core::MixedResult;
using core::SolveScratch;
using service::CacheKey;
using service::ContextCache;
using service::EmbedResult;
using service::FaultKind;
using service::ShardedLruCache;
using service::Strategy;
using verify::Scenario;
using verify::make_sweep;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

std::size_t sweep_size() {
  return static_cast<std::size_t>(env_u64("DBR_FUZZ_SCENARIOS", 200));
}

std::uint64_t base_seed() { return env_u64("DBR_FUZZ_SEED", 20260729); }

constexpr Strategy kAllStrategies[] = {
    Strategy::kAuto,    Strategy::kFfc,       Strategy::kEdgeAuto,
    Strategy::kEdgeScan, Strategy::kEdgePhi,  Strategy::kButterfly,
    Strategy::kMixed};

/// Shared per-(base, n) contexts so the sweep pays each precompute once.
class ContextPool {
 public:
  const InstanceContext& get(Digit base, unsigned n) {
    const std::uint64_t key = (static_cast<std::uint64_t>(base) << 32) | n;
    auto it = contexts_.find(key);
    if (it == contexts_.end())
      it = contexts_.emplace(key, InstanceContext::make(base, n)).first;
    return *it->second;
  }

 private:
  std::unordered_map<std::uint64_t, std::shared_ptr<const InstanceContext>>
      contexts_;
};

/// Field-by-field identity of two FFC results (everything the reference
/// solve produces, intermediates included — not just the final ring).
void expect_identical(const FfcResult& a, const FfcResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.cycle.nodes, b.cycle.nodes) << what;
  EXPECT_EQ(a.root, b.root) << what;
  EXPECT_EQ(a.bstar_size, b.bstar_size) << what;
  EXPECT_EQ(a.root_eccentricity, b.root_eccentricity) << what;
  EXPECT_EQ(a.faulty_necklace_reps, b.faulty_necklace_reps) << what;
  EXPECT_EQ(a.faulty_node_count, b.faulty_node_count) << what;
  EXPECT_EQ(a.necklace_count, b.necklace_count) << what;
  EXPECT_EQ(a.tree_edges, b.tree_edges) << what;
  EXPECT_EQ(a.modified_edges, b.modified_edges) << what;
}

/// Runs a solve, mapping a thrown precondition/beyond-guarantee failure to
/// nullopt so both paths can be required to fail (or succeed) together.
template <typename Fn>
std::optional<FfcResult> try_solve(Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// Every node-fault scenario of the corpus: the arena solve (one dirty,
// reused SolveScratch) must reproduce the reference allocation path bit for
// bit. Mixed scenarios run below; edge/butterfly constructions never enter
// the arena and are covered by test_fuzz_scenarios.
TEST(SolveArena, FfcBitIdentityAcrossScenarioCorpus) {
  ContextPool pool;
  SolveScratch scratch;  // reused dirty across all scenarios and shapes
  std::size_t compared = 0;
  for (const Strategy strategy : kAllStrategies) {
    for (const Scenario& sc : make_sweep(base_seed(), strategy, sweep_size())) {
      if (sc.request.fault_kind != FaultKind::kNode) continue;
      const InstanceContext& ctx = pool.get(sc.request.base, sc.request.n);
      const FfcSolver solver(ctx);
      const auto reference =
          try_solve([&] { return solver.solve(sc.request.faults); });
      const auto arena = try_solve(
          [&] { return core::solve_ffc(ctx, sc.request.faults, scratch); });
      ASSERT_EQ(reference.has_value(), arena.has_value())
          << "FUZZ FAILURE " << sc.describe()
          << ": one path solved, the other threw";
      if (reference) {
        expect_identical(*reference, *arena,
                         "FUZZ FAILURE " + sc.describe());
        ++compared;
      }
    }
  }
  // The node-strategy sweeps alone guarantee a large comparable share.
  EXPECT_GT(compared, sweep_size() / 2);
}

// Mixed scenarios: the session path (reused dirty arena) must match a
// fresh-arena solve field for field. The embedded FFC retries inside
// solve_mixed exercise the arena's reset discipline hardest — each retry
// reuses the arena the failed attempt just dirtied.
TEST(SolveArena, MixedBitIdentityAcrossScenarioCorpus) {
  ContextPool pool;
  SolveScratch reused;
  std::size_t compared = 0;
  for (const Scenario& sc :
       make_sweep(base_seed(), Strategy::kMixed, sweep_size())) {
    const InstanceContext& ctx = pool.get(sc.request.base, sc.request.n);
    SolveScratch fresh;
    const MixedResult a = core::solve_mixed(ctx, sc.request.faults,
                                            sc.request.edge_faults, fresh);
    const MixedResult b = core::solve_mixed(ctx, sc.request.faults,
                                            sc.request.edge_faults, reused);
    const std::string what = "FUZZ FAILURE " + sc.describe();
    ASSERT_EQ(a.cycle.has_value(), b.cycle.has_value()) << what;
    if (a.cycle) {
      EXPECT_EQ(a.cycle->nodes, b.cycle->nodes) << what;
    }
    EXPECT_EQ(a.route, b.route) << what;
    EXPECT_EQ(a.pullback_node_faults, b.pullback_node_faults) << what;
    EXPECT_EQ(a.pulled_back, b.pulled_back) << what;
    ++compared;
  }
  EXPECT_EQ(compared, sweep_size());
}

CacheKey nth_key(std::uint64_t i) {
  CacheKey key;
  key.base = 2;
  key.n = 6;
  key.fault_kind = FaultKind::kNode;
  key.strategy = Strategy::kFfc;
  key.faults = {static_cast<Word>(i)};
  return key;
}

/// The key-derived invariant hammer readers verify on every hit.
std::shared_ptr<const EmbedResult> nth_value(std::uint64_t i) {
  auto value = std::make_shared<EmbedResult>();
  value->lower_bound = i;
  value->upper_bound = 3 * i + 1;
  return value;
}

// Readers spin lock-free gets against a writer doing put-refreshes and
// periodic clears. Every hit must return a coherent Entry (the value's
// key-derived invariant intact) even while the authoritative map is being
// rewritten and republished — this is the TSan surface for the result
// cache's RCU snapshot and the atomic recency ticks.
TEST(SolveArena, LruCacheHammerKeepsHitsCoherent) {
  constexpr std::uint64_t kKeys = 96;  // > capacity: eviction under fire
  constexpr std::uint64_t kPuts = 20000;
  ShardedLruCache cache(64, 4);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad_values{0};
  std::atomic<std::uint64_t> observed_hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t);
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t k = (i++ * 2654435761u) % kKeys;
        if (const auto value = cache.get(nth_key(k))) {
          observed_hits.fetch_add(1, std::memory_order_relaxed);
          if (value->lower_bound != k || value->upper_bound != 3 * k + 1)
            bad_values.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::uint64_t p = 0; p < kPuts; ++p) {
    const std::uint64_t k = p % kKeys;
    cache.put(nth_key(k), nth_value(k));
    if (p % 4096 == 4095) cache.clear();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(bad_values.load(), 0u);
  EXPECT_GT(observed_hits.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());

  // Quiescent counter coherence: from a clean slate, every get is exactly
  // one hit or one miss and the totals add up.
  cache.clear();
  cache.put(nth_key(1), nth_value(1));
  ASSERT_NE(cache.get(nth_key(1)), nullptr);
  ASSERT_EQ(cache.get(nth_key(2)), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

// Same shape for the context cache: concurrent get_or_build over more
// shapes than the capacity admits (evictions) while a churn thread clears,
// so lock-free hits race builds, evictions and snapshot republication.
// Returned contexts must always be the right instance.
TEST(SolveArena, ContextCacheHammerKeepsHitsCoherent) {
  struct Shape {
    Digit base;
    unsigned n;
  };
  constexpr Shape kShapes[] = {{2, 4}, {2, 5}, {3, 3}, {2, 6}, {3, 4}};
  constexpr std::uint64_t kLookups = 4000;
  ContextCache cache(4);  // one fewer than the shapes: eviction under fire

  std::atomic<std::uint64_t> wrong_instance{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kLookups; ++i) {
        const Shape& shape =
            kShapes[(i * 2654435761u + static_cast<std::uint64_t>(t)) %
                    std::size(kShapes)];
        const auto ctx = cache.get_or_build(shape.base, shape.n);
        if (ctx == nullptr || ctx->base() != shape.base ||
            ctx->tuple_length() != shape.n)
          wrong_instance.fetch_add(1, std::memory_order_relaxed);
        if (t == 0 && i % 1024 == 1023) cache.clear();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong_instance.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());

  // Quiescent counter coherence, as above.
  cache.clear();
  bool hit = true;
  const auto first = cache.get_or_build(2, 5, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_build(2, 5, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first, second);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

}  // namespace
}  // namespace dbr
