#include <gtest/gtest.h>

#include <map>
#include <set>

#include "debruijn/kautz.hpp"
#include "debruijn/necklaces.hpp"
#include "debruijn/shuffle_exchange.hpp"
#include "graph/algorithms.hpp"
#include "graph/euler.hpp"
#include "necklace/count.hpp"
#include "util/require.hpp"

namespace dbr {
namespace {

// --------------------------------------------------------------------------
// Shuffle-exchange (the Chapter 4 companion graph).

TEST(ShuffleExchangeTest, EdgeKinds) {
  const ShuffleExchange g(4);
  const WordSpace& ws = g.words();
  const Word v = ws.from_digits(std::vector<Digit>{0, 1, 1, 0});
  EXPECT_EQ(g.shuffle(v), ws.from_digits(std::vector<Digit>{1, 1, 0, 0}));
  EXPECT_EQ(g.unshuffle(v), ws.from_digits(std::vector<Digit>{0, 0, 1, 1}));
  EXPECT_EQ(g.exchange(v), ws.from_digits(std::vector<Digit>{0, 1, 1, 1}));
  EXPECT_EQ(g.unshuffle(g.shuffle(v)), v);
}

TEST(ShuffleExchangeTest, DegreesAtMostThree) {
  const ShuffleExchange g(5);
  std::map<unsigned, unsigned> census;
  for (Word v = 0; v < g.num_nodes(); ++v) ++census[g.degree(v)];
  // 0^n and 1^n shuffle to themselves: degree 1 (exchange only); the two
  // alternating nodes have shuffle == unshuffle: degree 2; rest degree 3.
  EXPECT_EQ(census[1], 2u);
  EXPECT_GE(census[3], g.num_nodes() - 6);
}

TEST(ShuffleExchangeTest, SymmetricAndConnected) {
  const ShuffleExchange g(6);
  for (Word v = 0; v < g.num_nodes(); ++v) {
    for (Word w : g.neighbors(v)) {
      const auto back = g.neighbors(w);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end())
          << "neighbor relation must be symmetric";
    }
  }
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 1u);
}

TEST(ShuffleExchangeTest, ShuffleEdgesStayOnNecklace) {
  // [LMR88]'s levels: shuffles move along the necklace, exchanges leave it.
  const ShuffleExchange g(6);
  const WordSpace& ws = g.words();
  for (Word v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(ws.min_rotation(g.shuffle(v)), ws.min_rotation(v));
    EXPECT_EQ(ws.min_rotation(g.unshuffle(v)), ws.min_rotation(v));
    if (g.exchange(v) != ws.rotate_left(v, 0)) {
      // The exchange neighbor lies on a different necklace unless the flip
      // happens to be a rotation of v (possible, e.g. 01 -> 00? no: check
      // simply that exchange changes the word).
      EXPECT_NE(g.exchange(v), v);
    }
  }
}

TEST(ShuffleExchangeTest, NecklaceCountMatchesChapter4) {
  // The necklace census of SE(n) is the same as B(2,n)'s - the formula the
  // paper derives in Chapter 4 and [LHC89] computed by recurrence.
  for (unsigned n : {4u, 6u, 12u}) {
    const ShuffleExchange g(n);
    const auto necklaces = all_necklaces(g.words());
    EXPECT_EQ(necklaces.size(), necklace::necklaces_total(2, n));
  }
}

// --------------------------------------------------------------------------
// Kautz digraph (the Chapter 5 future-work relative).

class KautzStructure : public ::testing::TestWithParam<std::pair<Digit, unsigned>> {};

TEST_P(KautzStructure, CountsAndDegrees) {
  const auto [d, n] = GetParam();
  const KautzDigraph g(d, n);
  const auto nodes = g.nodes();
  std::uint64_t expect = d + 1ull;
  for (unsigned i = 1; i < n; ++i) expect *= d;
  EXPECT_EQ(nodes.size(), expect);
  std::map<Word, unsigned> indeg;
  for (Word v : nodes) {
    const auto succ = g.successors(v);
    EXPECT_EQ(succ.size(), d) << "out-degree";
    for (Word w : succ) {
      EXPECT_TRUE(g.is_node(w));
      EXPECT_TRUE(g.has_edge(v, w));
      EXPECT_NE(v, w) << "Kautz graphs have no loops";
      ++indeg[w];
    }
  }
  for (Word v : nodes) EXPECT_EQ(indeg[v], d) << "in-degree";
}

TEST_P(KautzStructure, StronglyConnectedWithDiameterAtMostNPlus1) {
  const auto [d, n] = GetParam();
  const KautzDigraph g(d, n);
  const auto nodes = g.nodes();
  for (Word v : {nodes.front(), nodes.back()}) {
    const auto r = bfs(g, v, [&](NodeId w) { return g.is_node(w); });
    std::uint64_t reached = 0;
    std::uint32_t ecc = 0;
    for (Word w : nodes) {
      if (r.dist[w] != kUnreached) {
        ++reached;
        ecc = std::max(ecc, r.dist[w]);
      }
    }
    EXPECT_EQ(reached, nodes.size());
    EXPECT_LE(ecc, n + 1) << "Kautz diameter is n (n+1 as a loose check)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KautzStructure,
    ::testing::Values(std::pair<Digit, unsigned>{2, 2}, std::pair<Digit, unsigned>{2, 4},
                      std::pair<Digit, unsigned>{3, 3}, std::pair<Digit, unsigned>{4, 3},
                      std::pair<Digit, unsigned>{5, 2}),
    [](const auto& pinfo) {
      return "K" + std::to_string(pinfo.param.first) + "_" +
             std::to_string(pinfo.param.second);
    });

TEST(KautzTest, IsEulerianHenceNextOrderIsHamiltonian) {
  // K(d,n) is balanced and strongly connected, so Eulerian; its Euler
  // circuits are the Hamiltonian cycles of K(d,n+1) (line-graph identity,
  // same as B(d,n) - the basis for ring embedding in Kautz networks).
  const KautzDigraph g(2, 3);
  const Digraph m = g.materialize();
  EXPECT_TRUE(has_eulerian_circuit(m));
  const auto circuit = eulerian_circuit(m);
  EXPECT_EQ(circuit.size(), g.num_kautz_edges());
  // Lift: consecutive circuit nodes overlap in n-1 digits, so windows of
  // n+1 circuit symbols give distinct K(2,4) nodes.
  const KautzDigraph big(2, 4);
  const WordSpace& ws = big.words();
  std::set<Word> lifted;
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    // Window: digits of circuit[i] followed by the last digit of the next
    // circuit node - a valid K(2,4) node since the hop is a Kautz edge.
    const Word window = circuit[i] * ws.radix() +
                        g.words().tail(circuit[(i + 1) % circuit.size()]);
    EXPECT_TRUE(big.is_node(window));
    lifted.insert(window);
  }
  EXPECT_EQ(lifted.size(), big.num_kautz_nodes());
}

TEST(KautzTest, RejectsInvalidNodes) {
  const KautzDigraph g(2, 3);
  const WordSpace& ws = g.words();
  const Word bad = ws.from_digits(std::vector<Digit>{1, 1, 0});
  EXPECT_FALSE(g.is_node(bad));
  EXPECT_THROW((void)g.successors(bad), precondition_error);
  EXPECT_FALSE(g.has_edge(bad, 0));
}

}  // namespace
}  // namespace dbr
