// Concurrency contract of the service ContextCache: one context constructed
// per key no matter how many threads miss at once, no torn reads on the
// lazily built sections, failed builds never cached, clear() starts a fresh
// observation window. Also the contract of the annotated lock wrappers the
// cache (and every other mutex-bearing component) locks through: identical
// semantics to the std primitives, zero size cost on any compiler.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "service/context_cache.hpp"
#include "service/engine.hpp"
#include "util/require.hpp"
#include "util/thread_annotations.hpp"

namespace dbr::service {
namespace {

struct KeyShape {
  Digit d;
  unsigned n;
};

TEST(ContextCacheTest, HitsReturnTheSameSharedContext) {
  ContextCache cache;
  bool hit = true;
  const auto first = cache.get_or_build(2, 6, &hit);
  EXPECT_FALSE(hit);
  const auto second = cache.get_or_build(2, 6, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());
  const ContextCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ContextCacheTest, MultiThreadHammerBuildsExactlyOneContextPerKey) {
  constexpr KeyShape kKeys[] = {{2, 6}, {2, 8}, {3, 4}, {5, 3}};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 50;

  ContextCache cache;
  util::Mutex mu;
  std::vector<std::vector<const core::InstanceContext*>> seen(
      std::size(kKeys));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        const std::size_t k = (t + i) % std::size(kKeys);
        const auto ctx = cache.get_or_build(kKeys[k].d, kKeys[k].n);
        // Exercise the lazy sections concurrently: a torn read here would
        // surface as an inconsistent size or a sanitizer report.
        ASSERT_EQ(ctx->necklaces().min_rot.size(), ctx->words().size());
        ASSERT_FALSE(ctx->psi_family().cycles.empty());
        const util::MutexLock lock(mu);
        seen[k].push_back(ctx.get());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t k = 0; k < std::size(kKeys); ++k) {
    ASSERT_FALSE(seen[k].empty());
    for (const core::InstanceContext* p : seen[k]) {
      EXPECT_EQ(p, seen[k].front()) << "duplicate context for key " << k;
    }
  }
  const ContextCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, std::size(kKeys));  // one build per key, ever
  EXPECT_EQ(stats.hits, kThreads * kIterations - std::size(kKeys));
  EXPECT_EQ(stats.entries, std::size(kKeys));
}

TEST(ContextCacheTest, CapacityEvictsTheLeastRecentlyUsedEntry) {
  ContextCache cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  const auto pinned = cache.get_or_build(2, 6);  // key A
  cache.get_or_build(3, 4);                      // key B
  cache.get_or_build(2, 6);                      // touch A: B is now LRU
  cache.get_or_build(5, 3);                      // key C evicts B
  EXPECT_EQ(cache.size(), 2u);
  bool hit = false;
  cache.get_or_build(2, 6, &hit);
  EXPECT_TRUE(hit);  // A survived
  cache.get_or_build(5, 3, &hit);
  EXPECT_TRUE(hit);  // C survived
  cache.get_or_build(3, 4, &hit);
  EXPECT_FALSE(hit);  // B was evicted and had to rebuild
  // The evicted-then-rebuilt entry displaced something, but the pinned
  // context from the original build stays fully usable regardless.
  EXPECT_EQ(pinned->necklaces().min_rot.size(), pinned->words().size());
}

TEST(ContextCacheTest, FailedBuildsPropagateAndAreNeverCached) {
  ContextCache cache;
  EXPECT_THROW(cache.get_or_build(1, 3), precondition_error);  // d < 2
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(cache.get_or_build(1, 3), precondition_error);  // retried
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ContextCacheTest, ClearDropsEntriesAndResetsCountersButNotPins) {
  ContextCache cache;
  const auto pinned = cache.get_or_build(2, 6);
  cache.get_or_build(2, 6);
  cache.clear();
  const ContextCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  // The pinned context stays fully usable after the cache forgot it.
  EXPECT_EQ(pinned->necklaces().min_rot.size(), pinned->words().size());
  // And the next lookup is a fresh build.
  bool hit = true;
  const auto rebuilt = cache.get_or_build(2, 6, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(rebuilt.get(), pinned.get());
}

// --------------------------------------------------------------------------
// Coherent stats snapshots under concurrent clear_cache().

// Regression hammer for EmbedEngine::stats_snapshot(): reader threads pull
// snapshots while one thread serves queries and another repeatedly calls
// clear_cache(). Without the seqlock around the clear, a snapshot can catch
// the counter families mid-reset — e.g. pre-clear result_hits against a
// freshly zeroed query count, a hit rate above 1 that no execution ever
// produced. The invariant checked on *every* snapshot: result_hits never
// exceeds queries by more than the number of concurrently serving threads
// (the documented bound — an in-flight query may contribute a hit whose
// query count was wiped, so the slack is the serve concurrency, never the
// discarded history).
TEST(EngineStatsSnapshotTest, CoherentUnderConcurrentClear) {
  EmbedEngine engine;
  EmbedRequest req;
  req.base = 2;
  req.n = 11;
  req.fault_kind = FaultKind::kNode;
  req.faults = {3};
  engine.query(req);  // seed the cache so hits dominate

  constexpr int kQueryThreads = 2;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) engine.query(req);
    });
  }
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.clear_cache();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const EngineStatsSnapshot snap = engine.stats_snapshot();
        if (snap.serve.result_hits > snap.serve.queries + kQueryThreads)
          violations.fetch_add(1, std::memory_order_relaxed);
        // Cross-family coherence: the result cache's own hit counter must
        // also stay consistent with the serve-side query count.
        if (snap.cache.hits > snap.serve.queries + kQueryThreads)
          violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : queriers) t.join();
  clearer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

// --- annotated lock wrappers (util/thread_annotations.hpp) ------------------

// Zero-cost contract: the annotations are attributes only, so every wrapper
// must be layout-identical to the std primitive it wraps (locks hold exactly
// the reference/handle the std guard would).
static_assert(sizeof(util::Mutex) == sizeof(std::mutex));
static_assert(sizeof(util::SharedMutex) == sizeof(std::shared_mutex));
static_assert(sizeof(util::CondVar) == sizeof(std::condition_variable));
static_assert(sizeof(util::MutexLock) == sizeof(util::Mutex*));
static_assert(sizeof(util::UniqueLock) == sizeof(std::unique_lock<std::mutex>));
static_assert(alignof(util::Mutex) == alignof(std::mutex));

TEST(ThreadAnnotationWrappers, MutexMatchesStdMutexSemantics) {
  util::Mutex mu;
  EXPECT_TRUE(mu.try_lock());  // unlocked -> acquired
  // Held by this thread: another thread's try_lock must fail, its blocking
  // lock must wait until the unlock below.
  std::atomic<bool> tried{false};
  std::atomic<bool> locked{false};
  std::thread contender([&] {
    EXPECT_FALSE(mu.try_lock());
    tried.store(true, std::memory_order_release);
    mu.lock();
    locked.store(true, std::memory_order_release);
    mu.unlock();
  });
  while (!tried.load(std::memory_order_acquire)) std::this_thread::yield();
  EXPECT_FALSE(locked.load(std::memory_order_acquire));
  mu.unlock();
  contender.join();
  EXPECT_TRUE(locked.load(std::memory_order_acquire));
  EXPECT_TRUE(mu.try_lock());  // released again
  mu.unlock();
}

TEST(ThreadAnnotationWrappers, MutexLockProvidesMutualExclusion) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  util::Mutex mu;
  long long counter = 0;  // unguarded on purpose: the lock is the test
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIncrements);
}

TEST(ThreadAnnotationWrappers, SharedMutexAllowsReadersExcludesWriter) {
  util::SharedMutex mu;
  mu.lock_shared();
  EXPECT_TRUE(mu.try_lock_shared());  // shared + shared coexist
  std::thread writer([&] { EXPECT_FALSE(mu.try_lock()); });
  writer.join();
  mu.unlock_shared();
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());  // all readers gone -> exclusive acquires
  std::thread reader([&] { EXPECT_FALSE(mu.try_lock_shared()); });
  reader.join();
  mu.unlock();
}

TEST(ThreadAnnotationWrappers, SharedReaderLockScopesTheSharedHold) {
  util::SharedMutex mu;
  {
    const util::SharedReaderLock guard(mu);
    std::thread writer([&] { EXPECT_FALSE(mu.try_lock()); });
    writer.join();
  }
  EXPECT_TRUE(mu.try_lock());  // guard released its shared hold at scope exit
  mu.unlock();
}

TEST(ThreadAnnotationWrappers, CondVarWakesWaiterUnderUniqueLock) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    util::UniqueLock lk(mu);
    while (!ready) cv.wait(lk);
    observed = true;
  });
  {
    const util::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

}  // namespace
}  // namespace dbr::service
