#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "service/engine.hpp"
#include "service/session.hpp"

// End-to-end tests of net::Server over real loopback sockets: wire answers
// must be bit-identical to in-process engine answers, and each production
// state — backpressure (kOverloaded), per-request timeouts (kTimeout),
// graceful drain (kShuttingDown + clean exit) and malformed-stream handling
// — has a dedicated test. Servers bind ephemeral ports (ServerOptions::port
// = 0), so tests never collide with each other or with the host.

namespace dbr::net {
namespace {

using service::EmbedEngine;
using service::EmbedRequest;
using service::EmbedResponse;
using service::EmbedStatus;
using service::EngineOptions;
using service::FaultKind;
using service::Strategy;

EmbedRequest node_request(Digit d, unsigned n, std::vector<Word> faults) {
  EmbedRequest req;
  req.base = d;
  req.n = n;
  req.fault_kind = FaultKind::kNode;
  req.faults = std::move(faults);
  return req;
}

/// Engine + started server + connected client, torn down in order.
struct Rig {
  explicit Rig(ServerOptions options = {}, EngineOptions engine_options = {}) {
    engine = std::make_unique<EmbedEngine>(engine_options);
    server = std::make_unique<Server>(*engine, options);
    server->start();
    client.connect("127.0.0.1", server->port());
  }
  ~Rig() {
    client.close();
    if (server && !server->stopped()) server->stop();
  }

  std::unique_ptr<EmbedEngine> engine;
  std::unique_ptr<Server> server;
  Client client;
};

TEST(NetServer, SolveMatchesInProcessAnswerBitForBit) {
  Rig rig;
  const EmbedRequest req = node_request(2, 11, {5, 99, 1234});
  const EmbedResponse local = rig.engine->query(req);
  ASSERT_EQ(local.result->status, EmbedStatus::kOk);

  const Client::SolveReply remote = rig.client.solve(req, /*want_ring=*/true);
  ASSERT_EQ(remote.status, WireStatus::kOk) << remote.message;
  EXPECT_EQ(remote.embed.status, local.result->status);
  EXPECT_EQ(remote.embed.strategy_used, local.result->strategy_used);
  EXPECT_EQ(remote.embed.ring_length, local.result->ring_length);
  EXPECT_EQ(remote.embed.lower_bound, local.result->lower_bound);
  EXPECT_EQ(remote.embed.upper_bound, local.result->upper_bound);
  ASSERT_TRUE(remote.embed.has_ring);
  // The engine caches results, so the wire answer is the *same* computation
  // — the ring words must match exactly, not just be equally valid.
  EXPECT_EQ(remote.embed.ring, local.result->ring.nodes);
  EXPECT_TRUE(remote.embed.cache_hit);  // local.query() filled the cache
}

TEST(NetServer, PipelinedBurstKeepsRequestOrder) {
  Rig rig;
  std::vector<EmbedRequest> reqs;
  for (Word f = 1; f <= 8; ++f) reqs.push_back(node_request(2, 11, {f}));
  const std::vector<Client::SolveReply> replies =
      rig.client.solve_pipeline(reqs, /*want_ring=*/false);
  ASSERT_EQ(replies.size(), reqs.size());
  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].status, WireStatus::kOk)
        << "i=" << i << " " << replies[i].message;
    EXPECT_EQ(replies[i].embed.status, EmbedStatus::kOk) << "i=" << i;
    EXPECT_FALSE(replies[i].embed.has_ring) << "i=" << i;
    // Distinct faults produce distinct cache keys; matching each reply to
    // its request's in-process answer proves replies did not reorder.
    const EmbedResponse local = rig.engine->query(reqs[i]);
    EXPECT_EQ(replies[i].embed.ring_length, local.result->ring_length)
        << "i=" << i;
  }
}

TEST(NetServer, SessionWalkthroughMirrorsInProcessSession) {
  EngineOptions eopts;
  eopts.incremental_repair = true;
  Rig rig({}, eopts);

  // Wire session and a local mirror on an identical second engine, stepped
  // in lockstep: every current_ring must agree on status and length.
  EmbedEngine local_engine(eopts);
  service::EmbedSession local(local_engine, 2, 11, FaultKind::kNode);

  ASSERT_EQ(rig.client.configure_session(2, 11, FaultKind::kNode).status,
            WireStatus::kOk);
  for (const Word fault : {Word{3}, Word{200}, Word{777}}) {
    const Client::FaultReply fr = rig.client.add_fault(FaultKind::kNode, fault);
    ASSERT_EQ(fr.status, WireStatus::kOk) << fr.message;
    EXPECT_TRUE(fr.changed);
    EXPECT_TRUE(local.add_fault(FaultKind::kNode, fault));
    const Client::SolveReply remote = rig.client.session_solve();
    const EmbedResponse mirror = local.current_ring();
    ASSERT_EQ(remote.status, WireStatus::kOk) << remote.message;
    EXPECT_EQ(remote.embed.status, mirror.result->status);
    EXPECT_EQ(remote.embed.ring_length, mirror.result->ring_length);
  }
  // Removing a fault exercises the repair path over the wire.
  ASSERT_EQ(rig.client.clear_fault(FaultKind::kNode, 200).status,
            WireStatus::kOk);
  EXPECT_TRUE(local.clear_fault(FaultKind::kNode, 200));
  const Client::SolveReply repaired = rig.client.session_solve();
  const EmbedResponse mirror = local.current_ring();
  ASSERT_EQ(repaired.status, WireStatus::kOk) << repaired.message;
  EXPECT_EQ(repaired.embed.status, mirror.result->status);
  EXPECT_EQ(repaired.embed.ring_length, mirror.result->ring_length);
  EXPECT_EQ(repaired.embed.repaired, mirror.repaired);

  ASSERT_EQ(rig.client.reset_faults().status, WireStatus::kOk);
  const Client::SolveReply clean = rig.client.session_solve();
  ASSERT_EQ(clean.status, WireStatus::kOk);
  EXPECT_EQ(clean.embed.status, EmbedStatus::kOk);
}

TEST(NetServer, SessionOpsBeforeConfigAnswerNoSession) {
  Rig rig;
  EXPECT_EQ(rig.client.add_fault(FaultKind::kNode, 1).status,
            WireStatus::kNoSession);
  EXPECT_EQ(rig.client.session_solve().status, WireStatus::kNoSession);
  EXPECT_EQ(rig.client.reset_faults().status, WireStatus::kNoSession);
  // The connection survives the rejections.
  EXPECT_EQ(rig.client.stats().status, WireStatus::kOk);
}

TEST(NetServer, BadInstanceAnswersBadRequestNotDisconnect) {
  Rig rig;
  ASSERT_EQ(rig.client.configure_session(1, 0, FaultKind::kNode).status,
            WireStatus::kOk);  // config stores, the session is lazy
  const Client::SolveReply reply = rig.client.session_solve();
  EXPECT_EQ(reply.status, WireStatus::kBadRequest);
  EXPECT_FALSE(reply.message.empty());
  EXPECT_EQ(rig.client.stats().status, WireStatus::kOk);
}

TEST(NetServer, BackpressureEngagesUnderTinyQueueBound) {
  ServerOptions opts;
  opts.workers = 1;
  opts.max_pending = 1;
  opts.debug_solve_delay_ms = 30.0;  // hold the one admitted slot busy
  Rig rig(opts);

  // Several clients firing concurrently against one slow worker and a
  // one-deep admission queue: at least one must bounce with kOverloaded,
  // and every reply must be either kOk or kOverloaded — never a hang, a
  // disconnect, or a reordering.
  constexpr int kClients = 5;
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c;
      c.connect("127.0.0.1", rig.server->port());
      const Client::SolveReply r =
          c.solve(node_request(2, 11, {static_cast<Word>(t + 1)}), false);
      if (r.status == WireStatus::kOk)
        ok.fetch_add(1);
      else if (r.status == WireStatus::kOverloaded)
        overloaded.fetch_add(1);
      else
        other.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_EQ(ok.load() + overloaded.load(), kClients);
  EXPECT_GE(rig.server->stats().overloaded, 1u);
}

TEST(NetServer, RequestPastDeadlineAnswersTimeout) {
  ServerOptions opts;
  opts.workers = 1;
  opts.request_timeout_ms = 10.0;
  opts.debug_solve_delay_ms = 50.0;  // every solve overruns the deadline
  Rig rig(opts);
  const Client::SolveReply reply =
      rig.client.solve(node_request(2, 11, {42}), false);
  EXPECT_EQ(reply.status, WireStatus::kTimeout);
  EXPECT_GE(rig.server->stats().timeouts, 1u);
  // The connection is still healthy after a timeout reply.
  EXPECT_EQ(rig.client.stats().status, WireStatus::kOk);
}

TEST(NetServer, TightDeadlineEnforcedAtReplyEnqueue) {
  ServerOptions opts;
  opts.workers = 1;
  opts.request_timeout_ms = 1.0;  // tighter than any cold solve
  Rig rig(opts);
  // No debug delay: a genuine cold solve of B(2,15) (context build plus the
  // full FFC construction over 32768 nodes, ring encoding included) takes
  // well over a millisecond, so its kOk payload is ready only after the
  // budget. The server must swap it for kTimeout when the reply is
  // enqueued — a late success must never reach the wire.
  const Client::SolveReply reply =
      rig.client.solve(node_request(2, 15, {42}), /*want_ring=*/true);
  EXPECT_EQ(reply.status, WireStatus::kTimeout);
  EXPECT_GE(rig.server->stats().timeouts, 1u);
  // The connection is still healthy after the timeout reply.
  EXPECT_EQ(rig.client.stats().status, WireStatus::kOk);
}

TEST(NetServer, GracefulDrainFinishesInFlightAndRejectsNew) {
  ServerOptions opts;
  opts.workers = 1;
  opts.debug_solve_delay_ms = 50.0;
  Rig rig(opts);

  // One slow solve in flight when drain starts: it must complete with kOk
  // (drain finishes admitted work; it does not cancel it).
  std::thread in_flight([&] {
    Client c;
    c.connect("127.0.0.1", rig.server->port());
    const Client::SolveReply r = c.solve(node_request(2, 11, {7}), false);
    EXPECT_EQ(r.status, WireStatus::kOk) << r.message;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  rig.server->drain();

  // Frames arriving after drain() answer kShuttingDown (while the in-flight
  // solve still holds the worker, proving rejection does not wait).
  const Client::SolveReply rejected =
      rig.client.solve(node_request(2, 11, {8}), false);
  EXPECT_EQ(rejected.status, WireStatus::kShuttingDown);

  in_flight.join();
  rig.server->wait();
  EXPECT_TRUE(rig.server->stopped());
  EXPECT_GE(rig.server->stats().shutdown_rejects, 1u);

  // A fresh connect must fail: the listener is gone.
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", rig.server->port()), TransportError);
}

TEST(NetServer, GarbageStreamClosesThatConnectionOnly) {
  Rig rig;
  // Raw socket speaking garbage: the server must drop it...
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char junk[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(::send(fd, junk, sizeof(junk) - 1, 0), 0);
  char buf[64];
  const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);  // blocks until close
  EXPECT_EQ(r, 0) << "server should close a garbage connection";
  ::close(fd);

  // ...while a well-behaved connection on the same server keeps working.
  const Client::SolveReply reply =
      rig.client.solve(node_request(2, 11, {3}), false);
  EXPECT_EQ(reply.status, WireStatus::kOk) << reply.message;
  EXPECT_GE(rig.server->stats().bad_frames, 1u);
}

TEST(NetServer, TruncatedPayloadWithValidHeaderAnswersBadFrame) {
  Rig rig;
  // Hand-build a kSolve frame whose payload is one lonely byte: the header
  // frames fine, the payload does not decode — the server must answer
  // kBadFrame and keep the connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::vector<std::uint8_t> frame;
  encode_header(frame, static_cast<std::uint8_t>(Op::kSolve), 9, 1);
  frame.push_back(0x5a);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  std::uint8_t buf[256];
  std::size_t got = 0;
  while (got < kHeaderSize) {
    const ssize_t r = ::recv(fd, buf + got, sizeof(buf) - got, 0);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  FrameError err = FrameError::kNone;
  const auto header = decode_header({buf, kHeaderSize}, &err);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->opcode, static_cast<std::uint8_t>(Op::kSolve) | kReplyBit);
  EXPECT_EQ(header->request_id, 9u);
  ::close(fd);

  const Client::SolveReply reply =
      rig.client.solve(node_request(2, 11, {3}), false);
  EXPECT_EQ(reply.status, WireStatus::kOk);
}

TEST(NetServer, StatsOpReportsServerAndSessionCounters) {
  Rig rig;
  ASSERT_EQ(rig.client.solve(node_request(2, 11, {1}), false).status,
            WireStatus::kOk);
  Client::StatsReply before = rig.client.stats();
  ASSERT_EQ(before.status, WireStatus::kOk) << before.message;
  EXPECT_FALSE(before.stats.has_session);
  EXPECT_GE(before.stats.server.solves, 1u);
  EXPECT_GE(before.stats.server.frames_in, 2u);
  EXPECT_EQ(before.stats.engine.serve.queries, 1u);
  EXPECT_FALSE(before.stats.server.draining);

  ASSERT_EQ(rig.client.configure_session(2, 11, FaultKind::kNode).status,
            WireStatus::kOk);
  ASSERT_EQ(rig.client.add_fault(FaultKind::kNode, 77).status, WireStatus::kOk);
  ASSERT_EQ(rig.client.session_solve(false).status, WireStatus::kOk);
  const Client::StatsReply after = rig.client.stats();
  ASSERT_EQ(after.status, WireStatus::kOk);
  EXPECT_TRUE(after.stats.has_session);
  EXPECT_GE(after.stats.session.solves, 1u);
  EXPECT_GE(after.stats.server.solves, 2u);
}

}  // namespace
}  // namespace dbr::net
