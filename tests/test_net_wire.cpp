#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "service/types.hpp"

// Wire-codec round-trip fuzz + malformed-frame corpus. The round-trip half
// generates random requests/responses/stats, encodes, decodes, and asserts
// bit-identity of every field; the adversarial half feeds truncated frames,
// bad magic, absurd lengths, and plain garbage through decode_* and the
// FrameParser and asserts a clean error every time — no crash, no UB (this
// file runs under the ASan/UBSan CI job like every other test).
//
// Knobs (env): DBR_WIRE_FUZZ_ITERS  iterations per fuzz test (default 300)

namespace dbr::net {
namespace {

using service::EmbedRequest;
using service::EmbedResponse;
using service::EmbedResult;
using service::EmbedStatus;
using service::FaultKind;
using service::FaultSet;
using service::Strategy;

std::size_t fuzz_iters() {
  if (const char* v = std::getenv("DBR_WIRE_FUZZ_ITERS")) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 300;
}

FaultSet random_fault_set(std::mt19937_64& rng) {
  FaultSet set;
  std::uniform_int_distribution<int> count(0, 6);
  std::uniform_int_distribution<Word> word(0, 1u << 20);
  const int nodes = count(rng);
  const int edges = count(rng);
  for (int i = 0; i < nodes; ++i) set.nodes.push_back(word(rng));
  for (int i = 0; i < edges; ++i) set.edges.push_back(word(rng));
  return set;
}

EmbedRequest random_request(std::mt19937_64& rng) {
  EmbedRequest req;
  req.base = static_cast<Digit>(2 + rng() % 7);
  req.n = static_cast<unsigned>(2 + rng() % 12);
  req.fault_kind = static_cast<FaultKind>(rng() % 3);
  req.strategy = static_cast<Strategy>(rng() % 7);
  FaultSet set = random_fault_set(rng);
  req.faults = std::move(set.nodes);
  req.edge_faults = std::move(set.edges);
  return req;
}

EmbedResponse random_response(std::mt19937_64& rng) {
  auto result = std::make_shared<EmbedResult>();
  result->status = static_cast<EmbedStatus>(rng() % 4);
  result->strategy_used = static_cast<Strategy>(rng() % 7);
  result->ring_length = rng() % 4096;
  result->lower_bound = rng() % 4096;
  result->upper_bound = rng() % 4096;
  result->compute_micros = static_cast<double>(rng() % 1000000) / 7.0;
  result->quarantined = (rng() % 4) == 0;
  if (result->status != EmbedStatus::kOk)
    result->error = "synthetic error #" + std::to_string(rng() % 100);
  const std::size_t ring_words = rng() % 64;
  for (std::size_t i = 0; i < ring_words; ++i)
    result->ring.nodes.push_back(rng() % (1u << 24));
  EmbedResponse resp;
  resp.result = std::move(result);
  resp.cache_hit = rng() % 2;
  resp.context_cache_hit = rng() % 2;
  resp.repaired = rng() % 2;
  resp.latency_micros = static_cast<double>(rng() % 1000000) / 3.0;
  return resp;
}

TEST(WireHeader, RoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_header(bytes, static_cast<std::uint8_t>(Op::kSolve), 0xdeadbeef, 12);
  ASSERT_EQ(bytes.size(), kHeaderSize);
  FrameError err = FrameError::kNone;
  const auto header = decode_header(bytes, &err);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(err, FrameError::kNone);
  EXPECT_EQ(header->version, kWireVersion);
  EXPECT_EQ(header->opcode, static_cast<std::uint8_t>(Op::kSolve));
  EXPECT_EQ(header->flags, 0);
  EXPECT_EQ(header->request_id, 0xdeadbeefu);
  EXPECT_EQ(header->payload_len, 12u);
}

TEST(WireHeader, ShortPrefixAsksForMore) {
  std::vector<std::uint8_t> bytes;
  encode_header(bytes, static_cast<std::uint8_t>(Op::kStats), 7, 0);
  for (std::size_t len = 0; len < kHeaderSize; ++len) {
    FrameError err = FrameError::kBadMagic;  // must be reset to kNone
    const auto header = decode_header(
        std::span<const std::uint8_t>(bytes.data(), len), &err);
    EXPECT_FALSE(header.has_value()) << "len=" << len;
    EXPECT_EQ(err, FrameError::kNone) << "len=" << len;
  }
}

TEST(WireHeader, RejectsBadMagicVersionFlagsLength) {
  std::vector<std::uint8_t> good;
  encode_header(good, static_cast<std::uint8_t>(Op::kSolve), 1, 4);
  FrameError err = FrameError::kNone;

  auto bad = good;
  bad[0] = 'X';
  EXPECT_FALSE(decode_header(bad, &err).has_value());
  EXPECT_EQ(err, FrameError::kBadMagic);

  bad = good;
  bad[4] = kWireVersion + 9;
  EXPECT_FALSE(decode_header(bad, &err).has_value());
  EXPECT_EQ(err, FrameError::kBadVersion);

  bad = good;
  bad[6] = 0x01;  // reserved flags
  EXPECT_FALSE(decode_header(bad, &err).has_value());
  EXPECT_EQ(err, FrameError::kBadFlags);

  bad = good;
  bad[12] = 0xff;  // payload_len little-endian low byte
  bad[13] = 0xff;
  bad[14] = 0xff;
  bad[15] = 0x7f;  // ~2 GiB: absurd, rejected before any allocation
  EXPECT_FALSE(decode_header(bad, &err).has_value());
  EXPECT_EQ(err, FrameError::kOversized);
}

TEST(WireFuzz, RequestRoundTripIsBitIdentical) {
  std::mt19937_64 rng(20260808);
  for (std::size_t i = 0; i < fuzz_iters(); ++i) {
    const EmbedRequest req = random_request(rng);
    const bool want_ring = rng() % 2;
    std::vector<std::uint8_t> payload;
    encode_request(payload, req, want_ring);
    EmbedRequest back;
    bool ring = !want_ring;
    ASSERT_TRUE(decode_request(payload, &back, &ring)) << "iter=" << i;
    EXPECT_EQ(back.base, req.base) << "iter=" << i;
    EXPECT_EQ(back.n, req.n) << "iter=" << i;
    EXPECT_EQ(back.fault_kind, req.fault_kind) << "iter=" << i;
    EXPECT_EQ(back.strategy, req.strategy) << "iter=" << i;
    EXPECT_EQ(back.faults, req.faults) << "iter=" << i;
    EXPECT_EQ(back.edge_faults, req.edge_faults) << "iter=" << i;
    EXPECT_EQ(ring, want_ring) << "iter=" << i;
  }
}

TEST(WireFuzz, EmbedRoundTripIsBitIdentical) {
  std::mt19937_64 rng(20260809);
  for (std::size_t i = 0; i < fuzz_iters(); ++i) {
    const EmbedResponse resp = random_response(rng);
    const bool want_ring = rng() % 2;
    std::vector<std::uint8_t> payload;
    WireWriter w(payload);
    encode_embed(w, resp, want_ring);
    WireReader r(payload);
    WireEmbed back;
    ASSERT_TRUE(decode_embed(r, &back)) << "iter=" << i;
    ASSERT_TRUE(r.exhausted()) << "iter=" << i;
    EXPECT_EQ(back.status, resp.result->status) << "iter=" << i;
    EXPECT_EQ(back.strategy_used, resp.result->strategy_used) << "iter=" << i;
    EXPECT_EQ(back.cache_hit, resp.cache_hit) << "iter=" << i;
    EXPECT_EQ(back.context_cache_hit, resp.context_cache_hit) << "iter=" << i;
    EXPECT_EQ(back.repaired, resp.repaired) << "iter=" << i;
    EXPECT_EQ(back.quarantined, resp.result->quarantined) << "iter=" << i;
    EXPECT_EQ(back.ring_length, resp.result->ring_length) << "iter=" << i;
    EXPECT_EQ(back.lower_bound, resp.result->lower_bound) << "iter=" << i;
    EXPECT_EQ(back.upper_bound, resp.result->upper_bound) << "iter=" << i;
    // Doubles cross the wire as their exact IEEE bits, so == is exact.
    EXPECT_EQ(back.compute_micros, resp.result->compute_micros) << "iter=" << i;
    EXPECT_EQ(back.latency_micros, resp.latency_micros) << "iter=" << i;
    EXPECT_EQ(back.error, resp.result->error) << "iter=" << i;
    EXPECT_EQ(back.has_ring, want_ring) << "iter=" << i;
    if (want_ring)
      EXPECT_EQ(back.ring, resp.result->ring.nodes) << "iter=" << i;
    else
      EXPECT_TRUE(back.ring.empty()) << "iter=" << i;
  }
}

TEST(WireFuzz, FaultSetRoundTrip) {
  std::mt19937_64 rng(20260810);
  for (std::size_t i = 0; i < fuzz_iters(); ++i) {
    const FaultSet set = random_fault_set(rng);
    std::vector<std::uint8_t> payload;
    WireWriter w(payload);
    encode_fault_set(w, set);
    WireReader r(payload);
    FaultSet back;
    ASSERT_TRUE(decode_fault_set(r, &back)) << "iter=" << i;
    ASSERT_TRUE(r.exhausted()) << "iter=" << i;
    EXPECT_EQ(back.nodes, set.nodes) << "iter=" << i;
    EXPECT_EQ(back.edges, set.edges) << "iter=" << i;
  }
}

// Every strict prefix of a valid payload must decode to a clean failure:
// truncation can never read out of bounds or crash.
TEST(WireFuzz, TruncatedRequestFailsCleanly) {
  std::mt19937_64 rng(20260811);
  for (std::size_t i = 0; i < 50; ++i) {
    const EmbedRequest req = random_request(rng);
    std::vector<std::uint8_t> payload;
    encode_request(payload, req, true);
    for (std::size_t len = 0; len < payload.size(); ++len) {
      EmbedRequest back;
      bool ring = false;
      EXPECT_FALSE(decode_request(
          std::span<const std::uint8_t>(payload.data(), len), &back, &ring))
          << "iter=" << i << " len=" << len;
    }
  }
}

TEST(WireFuzz, GarbagePayloadsNeverMisbehave) {
  std::mt19937_64 rng(20260812);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> size(0, 512);
  for (std::size_t i = 0; i < fuzz_iters(); ++i) {
    std::vector<std::uint8_t> junk(size(rng));
    for (auto& b : junk) b = static_cast<std::uint8_t>(byte(rng));
    // Any of these may *succeed* if the junk happens to parse; the contract
    // under test is bounded reads and no UB, which ASan/UBSan enforce.
    EmbedRequest req;
    bool ring = false;
    decode_request(junk, &req, &ring);
    WireReader r1(junk);
    WireEmbed embed;
    decode_embed(r1, &embed);
    WireReader r2(junk);
    WireStats stats;
    decode_stats(r2, &stats);
    WireReader r3(junk);
    FaultSet set;
    decode_fault_set(r3, &set);
  }
}

// --- STATS versioning -------------------------------------------------------

WireStats sample_stats() {
  WireStats s;
  s.engine.serve.queries = 101;
  s.engine.serve.result_hits = 40;
  s.engine.cache.hits = 40;
  s.engine.cache.misses = 61;
  s.engine.contexts.misses = 7;
  s.engine.validation.checked = 61;
  s.server.accepted = 9;
  s.server.frames_in = 120;
  s.server.solves = 101;
  s.has_session = true;
  s.session.adds = 5;
  s.session.solves = 6;
  s.repair.spliced = 2;
  return s;
}

TEST(WireStatsVersioning, FabricSectionRoundTripsBitIdentically) {
  WireStats s = sample_stats();
  s.has_fabric = true;
  s.fabric.queries = 101;
  s.fabric.hot_keys = 3;
  s.fabric.replica_reads = 17;
  s.fabric.remap_events = 2;
  s.fabric.remapped_keys = 11;
  s.fabric.remap_rounds = 240;
  s.fabric.remap_messages = 90000;
  for (std::uint32_t i = 0; i < 4; ++i) {
    WireFabricShard shard;
    shard.shard = i;
    shard.alive = i != 2;
    shard.keys_owned = 10 + i;
    shard.queries = 100 * (i + 1);
    shard.replica_reads = 5 * i;
    shard.context_builds = 3 + i;
    s.fabric.shards.push_back(shard);
  }
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  encode_stats(w, s);
  WireReader r(payload);
  WireStats out;
  ASSERT_TRUE(decode_stats(r, &out));
  EXPECT_TRUE(r.exhausted());
  ASSERT_TRUE(out.has_fabric);
  EXPECT_EQ(out.fabric, s.fabric);
}

TEST(WireStatsVersioning, AcceptsPreFabricPayload) {
  // A pre-fabric peer's payload ends right after the session block — it
  // does not even carry the has_fabric byte. Emulate it by truncating the
  // trailing has_fabric = 0 byte the current encoder appends.
  WireStats s = sample_stats();
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  encode_stats(w, s);
  ASSERT_EQ(payload.back(), 0u);  // has_fabric byte of the new encoding
  payload.pop_back();

  WireReader r(payload);
  WireStats out;
  ASSERT_TRUE(decode_stats(r, &out));
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(out.has_fabric);
  EXPECT_EQ(out.engine.serve.queries, s.engine.serve.queries);
  EXPECT_TRUE(out.has_session);
  EXPECT_EQ(out.session.solves, s.session.solves);
}

TEST(WireStatsVersioning, NoFabricEncodingDecodesWithoutFabric) {
  WireStats s = sample_stats();
  s.has_session = false;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  encode_stats(w, s);
  WireReader r(payload);
  WireStats out;
  ASSERT_TRUE(decode_stats(r, &out));
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(out.has_fabric);
  EXPECT_FALSE(out.has_session);
}

TEST(WireStatsVersioning, HostileShardCountRejectedBeforeAllocation) {
  WireStats s = sample_stats();
  s.has_session = false;
  s.has_fabric = true;
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  encode_stats(w, s);
  // Corrupt the shard count (the final u32 of an empty-shard encoding) to
  // claim 2^32 - 1 entries with no bytes behind them.
  ASSERT_GE(payload.size(), 4u);
  payload[payload.size() - 4] = 0xff;
  payload[payload.size() - 3] = 0xff;
  payload[payload.size() - 2] = 0xff;
  payload[payload.size() - 1] = 0xff;
  WireReader r(payload);
  WireStats out;
  EXPECT_FALSE(decode_stats(r, &out));
}

// A count field claiming more words than the payload holds must fail before
// allocating (a hostile 0xffffffff count cannot OOM the decoder).
TEST(WireFuzz, HostileCountsRejectedBeforeAllocation) {
  std::vector<std::uint8_t> payload;
  WireWriter w(payload);
  w.u32(0xffffffffu);  // word count with no words behind it
  WireReader r(payload);
  const std::vector<Word> words = r.words();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(words.empty());
}

TEST(FrameParser, ReassemblesFramesAcrossArbitraryChunks) {
  std::mt19937_64 rng(20260813);
  // Three frames back-to-back, fed one random-sized sliver at a time.
  std::vector<std::uint8_t> stream;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    std::vector<std::uint8_t> payload;
    encode_request(payload, random_request(rng), true);
    encode_header(stream, static_cast<std::uint8_t>(Op::kSolve), id,
                  static_cast<std::uint32_t>(payload.size()));
    stream.insert(stream.end(), payload.begin(), payload.end());
  }
  FrameParser parser;
  std::vector<Frame> frames;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng() % 7, stream.size() - pos);
    parser.feed(std::span<const std::uint8_t>(stream.data() + pos, chunk));
    pos += chunk;
    Frame f;
    while (parser.next(&f) == FrameParser::Result::kFrame)
      frames.push_back(std::move(f));
  }
  ASSERT_EQ(frames.size(), 3u);
  for (std::uint32_t id = 1; id <= 3; ++id)
    EXPECT_EQ(frames[id - 1].header.request_id, id);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, StickyErrorOnGarbageStream) {
  FrameParser parser;
  std::vector<std::uint8_t> junk = {'n', 'o', 'p', 'e', 0, 0, 0, 0,
                                    0,   0,   0,   0,   0, 0, 0, 0};
  parser.feed(junk);
  Frame f;
  EXPECT_EQ(parser.next(&f), FrameParser::Result::kError);
  EXPECT_EQ(parser.error(), FrameError::kBadMagic);
  // Feeding a perfectly valid frame afterwards cannot resurrect the stream:
  // frame boundaries are untrusted once framing has failed.
  std::vector<std::uint8_t> good;
  encode_header(good, static_cast<std::uint8_t>(Op::kStats), 1, 0);
  parser.feed(good);
  EXPECT_EQ(parser.next(&f), FrameParser::Result::kError);
}

TEST(FrameParser, OversizedLengthIsAnError) {
  std::vector<std::uint8_t> header;
  encode_header(header, static_cast<std::uint8_t>(Op::kSolve), 1, 0);
  header[12] = 0xff;
  header[13] = 0xff;
  header[14] = 0xff;
  header[15] = 0xff;
  FrameParser parser;
  parser.feed(header);
  Frame f;
  EXPECT_EQ(parser.next(&f), FrameParser::Result::kError);
  EXPECT_EQ(parser.error(), FrameError::kOversized);
}

TEST(FrameParser, RandomJunkNeverCrashes) {
  std::mt19937_64 rng(20260814);
  std::uniform_int_distribution<int> byte(0, 255);
  for (std::size_t i = 0; i < fuzz_iters(); ++i) {
    FrameParser parser;
    std::vector<std::uint8_t> junk(1 + rng() % 256);
    for (auto& b : junk) b = static_cast<std::uint8_t>(byte(rng));
    // Occasionally lead with real magic so the fuzz also explores the
    // header-accepted-then-truncated path.
    if (rng() % 3 == 0 && junk.size() >= 4) {
      junk[0] = kMagic[0];
      junk[1] = kMagic[1];
      junk[2] = kMagic[2];
      junk[3] = kMagic[3];
      if (junk.size() >= 5 && rng() % 2) junk[4] = kWireVersion;
    }
    parser.feed(junk);
    Frame f;
    for (int steps = 0; steps < 64; ++steps) {
      const FrameParser::Result res = parser.next(&f);
      if (res != FrameParser::Result::kFrame) break;
    }
  }
}

}  // namespace
}  // namespace dbr::net
