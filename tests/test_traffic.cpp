#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "workload.hpp"  // bench/ include dir (see CMakeLists tests loop)
#include "service/engine.hpp"
#include "sim/fib.hpp"
#include "util/rng.hpp"
#include "verify/oracle.hpp"
#include "verify/scenario.hpp"

// Packet-level traffic over embedded rings: the conservation property
// (every injected packet is exactly one of delivered / dropped-with-reason /
// in-flight, per round and at the horizon), deterministic replay, the
// session's ring_epoch() invalidation contract, and the repair-vs-cold
// recovery advantage — swept across generated traffic scenarios. Assertion
// messages lead with the scenario's "(seed=…, base=…, n=…, strategy=…)"
// tuple; feed the seed back into verify::make_traffic_scenario to reproduce.
//
// Knobs (env): DBR_TRAFFIC_SCENARIOS  scenarios in the sweep (default 40)
//              DBR_TRAFFIC_SEED       base seed             (default 20260808)

namespace dbr::sim {
namespace {

using service::EngineOptions;
using service::FaultKind;
using service::Strategy;
using verify::TimedChurnEvent;
using verify::TrafficPattern;
using verify::TrafficScenario;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::uint64_t>(parsed);
  }
  return fallback;
}

std::size_t sweep_size() {
  return static_cast<std::size_t>(env_u64("DBR_TRAFFIC_SCENARIOS", 40));
}

std::uint64_t base_seed() { return env_u64("DBR_TRAFFIC_SEED", 20260808); }

EngineOptions repair_options() {
  EngineOptions options;
  options.incremental_repair = true;
  options.validate_responses = true;
  return options;
}

EngineOptions cold_options() {
  EngineOptions options;
  options.incremental_repair = false;
  options.validate_responses = true;
  return options;
}

/// The scenario's flows: the TrafficMatrix pattern seeded from the
/// scenario (split stream 400, disjoint from every generator stream).
std::function<std::vector<Flow>(const NodeCycle&)> scenario_flows(
    const TrafficScenario& sc, std::uint64_t packets_per_flow = 32) {
  return [&sc, packets_per_flow](const NodeCycle& ring) {
    Rng rng = Rng(sc.seed).split(400);
    bench::TrafficMatrix matrix;
    matrix.packets_per_flow = packets_per_flow;
    return matrix.flows(ring, sc.pattern, rng);
  };
}

// --- RingFib unit semantics ---

TEST(RingFib, RoutesAlongTheRing) {
  NodeCycle ring;
  ring.nodes = {3, 1, 4, 2};
  const RingFib fib = build_ring_fib(ring, 6, 7);
  EXPECT_EQ(fib.version, 7u);
  EXPECT_EQ(fib.ring_length, 4u);
  EXPECT_EQ(fib.next_hop[3], 1u);
  EXPECT_EQ(fib.next_hop[1], 4u);
  EXPECT_EQ(fib.next_hop[4], 2u);
  EXPECT_EQ(fib.next_hop[2], 3u);  // wraps
  EXPECT_FALSE(fib.on_ring(0));
  EXPECT_FALSE(fib.on_ring(5));
  EXPECT_EQ(fib.position[3], 0u);
  EXPECT_EQ(fib.position[2], 3u);
  EXPECT_EQ(fib.hop_distance(3, 2), 3u);
  EXPECT_EQ(fib.hop_distance(2, 3), 1u);
  EXPECT_EQ(fib.hop_distance(1, 1), 0u);
}

TEST(RingFib, EmptyRingRoutesNothing) {
  const RingFib fib = build_ring_fib(NodeCycle{}, 4, 1);
  EXPECT_EQ(fib.ring_length, 0u);
  for (NodeId v = 0; v < 4; ++v) EXPECT_FALSE(fib.on_ring(v));
}

TEST(RingFib, RejectsMalformedRings) {
  NodeCycle repeated;
  repeated.nodes = {0, 1, 0};
  EXPECT_THROW(build_ring_fib(repeated, 4, 1), precondition_error);
  NodeCycle out_of_range;
  out_of_range.nodes = {0, 9};
  EXPECT_THROW(build_ring_fib(out_of_range, 4, 1), precondition_error);
}

// --- Conservation: per round and at the horizon, across the sweep ---

TEST(Traffic, ConservationAcrossScenarioSweep) {
  const std::vector<TrafficScenario> sweep =
      verify::make_traffic_sweep(base_seed(), sweep_size());
  for (const TrafficScenario& sc : sweep) {
    const ScenarioTrafficResult run = run_traffic_scenario(
        sc, repair_options(), TrafficConfig{}, scenario_flows(sc),
        [&](std::uint64_t round, const TrafficStats& s) {
          ASSERT_TRUE(s.conserved())
              << sc.describe() << " conservation broke at round " << round
              << ": injected=" << s.injected << " delivered=" << s.delivered
              << " dropped=" << s.dropped_total()
              << " in_flight=" << s.in_flight;
        });
    const TrafficStats& s = run.stats;
    EXPECT_TRUE(s.conserved()) << sc.describe();
    EXPECT_EQ(s.oracle_violations, 0u) << sc.describe();
    EXPECT_GT(s.injected, 0u) << sc.describe();
    EXPECT_GT(s.delivered, 0u) << sc.describe();
    EXPECT_EQ(s.rounds, sc.horizon) << sc.describe();
    EXPECT_EQ(s.rounds_before + s.rounds_during + s.rounds_after, s.rounds)
        << sc.describe();
    EXPECT_EQ(s.delivered_before + s.delivered_during + s.delivered_after,
              s.delivered)
        << sc.describe();
    EXPECT_EQ(s.fault_epochs, s.faults.size()) << sc.describe();
    // Per-epoch drops never exceed the global per-reason counters.
    std::array<std::uint64_t, kDropReasonCount> attributed{};
    for (const FaultImpact& f : s.faults) {
      for (std::size_t r = 0; r < kDropReasonCount; ++r) {
        attributed[r] += f.drops[r];
      }
    }
    for (std::size_t r = 0; r < kDropReasonCount; ++r) {
      EXPECT_LE(attributed[r], s.dropped[r]) << sc.describe();
    }
  }
}

// --- Deterministic replay: identical tuples, bit-identical traces ---

TEST(Traffic, DeterministicReplay) {
  const std::vector<TrafficScenario> sweep =
      verify::make_traffic_sweep(base_seed() + 1000, sweep_size() / 2 + 1);
  for (const TrafficScenario& sc : sweep) {
    const ScenarioTrafficResult a = run_traffic_scenario(
        sc, repair_options(), TrafficConfig{}, scenario_flows(sc));
    const ScenarioTrafficResult b = run_traffic_scenario(
        sc, repair_options(), TrafficConfig{}, scenario_flows(sc));
    EXPECT_EQ(a.trace_hash, b.trace_hash) << sc.describe();
    EXPECT_EQ(a.stats.injected, b.stats.injected) << sc.describe();
    EXPECT_EQ(a.stats.delivered, b.stats.delivered) << sc.describe();
    EXPECT_EQ(a.stats.dropped, b.stats.dropped) << sc.describe();
    EXPECT_EQ(a.stats.in_flight, b.stats.in_flight) << sc.describe();
    EXPECT_EQ(a.stats.hops, b.stats.hops) << sc.describe();
    EXPECT_EQ(a.stats.fib_installs, b.stats.fib_installs) << sc.describe();
    EXPECT_EQ(a.ring_epochs, b.ring_epochs) << sc.describe();
    ASSERT_EQ(a.stats.faults.size(), b.stats.faults.size()) << sc.describe();
    for (std::size_t i = 0; i < a.stats.faults.size(); ++i) {
      EXPECT_EQ(a.stats.faults[i].drops, b.stats.faults[i].drops)
          << sc.describe() << " fault epoch " << i;
      EXPECT_EQ(a.stats.faults[i].recovery_rounds,
                b.stats.faults[i].recovery_rounds)
          << sc.describe() << " fault epoch " << i;
    }
  }
}

// The generator itself must be a pure function of its seed.
TEST(Traffic, ScenarioGeneratorIsPure) {
  for (std::uint64_t seed = base_seed(); seed < base_seed() + 20; ++seed) {
    const TrafficScenario a = verify::make_traffic_scenario(seed);
    const TrafficScenario b = verify::make_traffic_scenario(seed);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.churn, b.churn);
    EXPECT_EQ(a.horizon, b.horizon);
    EXPECT_EQ(a.queue_capacity, b.queue_capacity);
    // Rounds ascending, events inside the horizon (run() preconditions).
    for (std::size_t i = 0; i + 1 < a.churn.size(); ++i) {
      EXPECT_LE(a.churn[i].round, a.churn[i + 1].round) << a.describe();
    }
    ASSERT_FALSE(a.churn.empty()) << a.describe();
    EXPECT_LT(a.churn.back().round, a.horizon) << a.describe();
  }
}

// --- ring_epoch(): the FIB-invalidation contract ---

TEST(Traffic, RingEpochAdvancesOnlyWhenTheRingMoves) {
  service::EmbedRequest shape;
  shape.base = 3;
  shape.n = 4;
  shape.fault_kind = FaultKind::kMixed;
  shape.strategy = Strategy::kMixed;
  TrafficHarness h(shape, repair_options());
  EXPECT_EQ(h.session.ring_epoch(), 0u);

  const service::EmbedResponse first = h.driver.current_ring();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(h.session.ring_epoch(), 1u);

  // Memoized answers do not advance the epoch.
  h.driver.current_ring();
  EXPECT_EQ(h.session.ring_epoch(), 1u);

  // A no-op churn round trip (add + clear before any re-solve) keeps the
  // memoized answer and the epoch.
  const Word on_ring = first.result->ring.nodes.front();
  h.session.add_fault(FaultKind::kNode, on_ring);
  h.session.clear_fault(FaultKind::kNode, on_ring);
  h.driver.current_ring();
  EXPECT_EQ(h.session.ring_epoch(), 1u);

  // An off-ring link cut under incremental repair is a no-op splice: the
  // same immutable result serves, so routing state stays valid.
  const WordSpace ws(shape.base, shape.n);
  std::vector<Word> used = edge_words(ws, first.result->ring);
  std::sort(used.begin(), used.end());
  Word off_ring_edge = ws.edge_word_count();
  for (Word w = 0; w < ws.edge_word_count(); ++w) {
    if (verify::is_loop_edge_word(ws, w)) continue;
    if (!std::binary_search(used.begin(), used.end(), w)) {
      off_ring_edge = w;
      break;
    }
  }
  ASSERT_LT(off_ring_edge, ws.edge_word_count());
  h.driver.cut_link(off_ring_edge);
  const service::EmbedResponse spliced = h.driver.current_ring();
  ASSERT_TRUE(spliced.ok());
  EXPECT_TRUE(spliced.repaired);
  EXPECT_EQ(spliced.result.get(), first.result.get());
  EXPECT_EQ(h.session.ring_epoch(), 1u);

  // Killing an on-ring node must move the ring — the epoch advances.
  h.driver.kill(on_ring);
  const service::EmbedResponse moved = h.driver.current_ring();
  ASSERT_TRUE(moved.ok());
  EXPECT_NE(moved.result.get(), first.result.get());
  EXPECT_EQ(h.session.ring_epoch(), 2u);
}

// --- Handcrafted fault timelines: every drop reason is reachable ---

TEST(Traffic, KillOnRingBleedsAndStrandsPackets) {
  service::EmbedRequest shape;
  shape.base = 3;
  shape.n = 4;
  shape.fault_kind = FaultKind::kNode;
  shape.strategy = Strategy::kFfc;
  TrafficHarness h(shape, repair_options());
  const service::EmbedResponse first = h.driver.current_ring();
  ASSERT_TRUE(first.ok());
  const std::vector<Word>& ring = first.result->ring.nodes;

  // One long stream whose destination dies mid-flight, plus one whose path
  // crosses the victim, plus an unaffected control flow far away.
  const Word victim = ring[10];
  TrafficConfig config;
  config.queue_capacity = 8;
  TrafficSim sim(h.driver, config);
  sim.add_flow({ring[4], victim, 64, 0, 1});    // destined to the victim
  sim.add_flow({ring[6], ring[20], 64, 0, 2});  // transits the victim
  sim.add_flow({ring[30], ring[33], 64, 0, 3});
  std::vector<TimedChurnEvent> churn;
  churn.push_back({5, {true, victim, FaultKind::kNode}});

  const TrafficStats s = sim.run(churn, 160);
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.oracle_violations, 0u);
  // The stale window bleeds into the dead router; the install strands
  // packets addressed to it.
  EXPECT_GT(s.dropped[static_cast<std::size_t>(DropReason::kDeadNode)], 0u);
  EXPECT_GT(s.dropped[static_cast<std::size_t>(DropReason::kNoRoute)], 0u);
  EXPECT_GT(s.delivered, 0u);
  ASSERT_EQ(s.faults.size(), 1u);
  EXPECT_TRUE(s.faults[0].ring_changed);
  EXPECT_GT(s.faults[0].recovery_rounds, 0u);
  EXPECT_GT(s.faults[0].drops_total(), 0u);
  EXPECT_EQ(s.fib_installs, 2u);  // initial + post-repair
  // The control flow's packets all arrive: drops stay below total traffic.
  EXPECT_GE(s.delivered, 64u);
}

TEST(Traffic, CutOnRingLinkDropsAsCutLink) {
  service::EmbedRequest shape;
  shape.base = 3;
  shape.n = 4;
  shape.fault_kind = FaultKind::kMixed;
  shape.strategy = Strategy::kMixed;
  TrafficHarness h(shape, repair_options());
  const service::EmbedResponse first = h.driver.current_ring();
  ASSERT_TRUE(first.ok());
  const WordSpace ws(shape.base, shape.n);
  const std::vector<Word>& ring = first.result->ring.nodes;
  // Cut the physical ring link leaving position 8 while a stream crosses it.
  const Word cut_edge = edge_words(ws, first.result->ring)[8];

  TrafficConfig config;
  config.queue_capacity = 8;
  TrafficSim sim(h.driver, config);
  sim.add_flow({ring[2], ring[14], 64, 0, 1});
  std::vector<TimedChurnEvent> churn;
  churn.push_back({6, {true, cut_edge, FaultKind::kEdge}});

  const TrafficStats s = sim.run(churn, 160);
  EXPECT_TRUE(s.conserved());
  EXPECT_EQ(s.oracle_violations, 0u);
  EXPECT_GT(s.dropped[static_cast<std::size_t>(DropReason::kCutLink)], 0u);
  EXPECT_GT(s.delivered, 0u);
  ASSERT_EQ(s.faults.size(), 1u);
  EXPECT_TRUE(s.faults[0].ring_changed);
}

TEST(Traffic, TinyQueuesOverflowUnderIncast) {
  service::EmbedRequest shape;
  shape.base = 2;
  shape.n = 6;
  shape.fault_kind = FaultKind::kNode;
  shape.strategy = Strategy::kFfc;
  TrafficHarness h(shape, repair_options());
  const service::EmbedResponse first = h.driver.current_ring();
  ASSERT_TRUE(first.ok());

  TrafficConfig config;
  config.queue_capacity = 1;  // drop-tail bites immediately
  TrafficSim sim(h.driver, config);
  Rng rng(42);
  bench::TrafficMatrix matrix;
  matrix.packets_per_flow = 32;
  sim.add_flows(matrix.flows(first.result->ring, TrafficPattern::kIncast, rng));

  std::uint64_t conserved_rounds = 0;
  const TrafficStats s =
      sim.run({}, 200, [&](std::uint64_t, const TrafficStats& st) {
        if (st.conserved()) ++conserved_rounds;
      });
  EXPECT_EQ(conserved_rounds, 200u);
  EXPECT_TRUE(s.conserved());
  EXPECT_GT(s.dropped[static_cast<std::size_t>(DropReason::kQueueOverflow)],
            0u);
  EXPECT_GT(s.delivered, 0u);
  EXPECT_TRUE(s.faults.empty());  // no churn: every drop is pure congestion
  EXPECT_EQ(s.rounds_before, 200u);
}

// --- Repair vs cold re-solve: the application-visible advantage ---

TEST(Traffic, RepairLosesNoMorePacketsThanColdResolve) {
  const std::vector<TrafficScenario> sweep =
      verify::make_traffic_sweep(base_seed() + 2000, 12);
  std::uint64_t repair_drops = 0, cold_drops = 0;
  std::uint64_t repair_recovery = 0, cold_recovery = 0;
  std::uint64_t repaired_rings = 0;
  for (const TrafficScenario& sc : sweep) {
    // Long streams so traffic is in flight across the whole churn timeline.
    const auto flows = scenario_flows(sc, 128);
    const ScenarioTrafficResult repair =
        run_traffic_scenario(sc, repair_options(), TrafficConfig{}, flows);
    const ScenarioTrafficResult cold =
        run_traffic_scenario(sc, cold_options(), TrafficConfig{}, flows);
    EXPECT_TRUE(repair.stats.conserved()) << sc.describe();
    EXPECT_TRUE(cold.stats.conserved()) << sc.describe();
    EXPECT_EQ(repair.stats.oracle_violations, 0u) << sc.describe();
    EXPECT_EQ(cold.stats.oracle_violations, 0u) << sc.describe();
    // Compare the fault-attributed loss (drops inside rebuild windows,
    // as recorded per FaultImpact), not total drops: steady-state
    // queue-overflow is ring-shape congestion noise -- a re-solved ring
    // can congest more or less than a spliced one under the same flows --
    // while the window-attributed count is exactly "packets lost per
    // failure", the quantity the recovery path controls.
    for (const FaultImpact& f : repair.stats.faults) {
      repair_drops += f.drops_total();
    }
    for (const FaultImpact& f : cold.stats.faults) {
      cold_drops += f.drops_total();
    }
    repair_recovery += repair.stats.rebuild_rounds;
    cold_recovery += cold.stats.rebuild_rounds;
    repaired_rings += repair.drive.repaired_rings;
  }
  // The splice path must actually engage across the sweep, and once it
  // does, its shorter stalls translate into strictly fewer lost packets
  // per fault and strictly fewer rounds spent rebuilding.
  EXPECT_GT(repaired_rings, 0u);
  EXPECT_LT(repair_drops, cold_drops);
  EXPECT_LT(repair_recovery, cold_recovery);
}

}  // namespace
}  // namespace dbr::sim
