#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "debruijn/cycle.hpp"
#include "debruijn/debruijn.hpp"
#include "debruijn/necklaces.hpp"
#include "graph/algorithms.hpp"
#include "graph/euler.hpp"
#include "necklace/count.hpp"
#include "util/require.hpp"

namespace dbr {
namespace {

TEST(DeBruijn, BasicCounts) {
  const DeBruijnDigraph g(2, 3);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 16u);
  EXPECT_EQ(g.num_nonloop_edges(), 14u);
}

TEST(DeBruijn, SuccessorsOfPaperNode) {
  // In B(2,3): 110 -> {100, 101}.
  const DeBruijnDigraph g(2, 3);
  const auto& ws = g.words();
  const Word v = ws.from_digits(std::vector<Digit>{1, 1, 0});
  const auto succ = g.successors(v);
  EXPECT_EQ(succ, (std::vector<Word>{ws.from_digits(std::vector<Digit>{1, 0, 0}),
                                     ws.from_digits(std::vector<Digit>{1, 0, 1})}));
}

TEST(DeBruijn, PredecessorSuccessorDuality) {
  const DeBruijnDigraph g(3, 4);
  for (Word v = 0; v < g.num_nodes(); v += 7) {
    for (Word u : g.predecessors(v)) {
      EXPECT_TRUE(g.has_edge(u, v));
    }
    for (Word w : g.successors(v)) {
      EXPECT_TRUE(g.has_edge(v, w));
      const auto preds = g.predecessors(w);
      EXPECT_NE(std::find(preds.begin(), preds.end(), v), preds.end());
    }
  }
}

TEST(DeBruijn, LoopNodes) {
  const DeBruijnDigraph g(3, 3);
  const auto& ws = g.words();
  unsigned loops = 0;
  for (Word v = 0; v < g.num_nodes(); ++v) {
    const bool self = g.has_edge(v, v);
    EXPECT_EQ(self, g.is_loop_node(v));
    if (self) {
      ++loops;
      EXPECT_EQ(v, ws.repeated(ws.head(v)));
    }
  }
  EXPECT_EQ(loops, 3u);  // exactly the d constant words a^n
}

TEST(DeBruijn, InOutDegreeIsD) {
  const DeBruijnDigraph g(4, 3);
  const Digraph m = g.materialize();
  for (std::uint64_t deg : m.out_degrees()) EXPECT_EQ(deg, 4u);
  for (std::uint64_t deg : m.in_degrees()) EXPECT_EQ(deg, 4u);
}

TEST(DeBruijn, StronglyConnected) {
  for (Digit d : {2u, 3u, 4u}) {
    const DeBruijnDigraph g(d, 3);
    const auto scc = strongly_connected_components(g);
    EXPECT_EQ(scc.count, 1u) << "B(" << d << ",3) must be strongly connected";
  }
}

TEST(DeBruijn, DiameterIsN) {
  // dist(u,v) <= n for all u,v, with equality achieved.
  const DeBruijnDigraph g(2, 5);
  std::uint32_t max_ecc = 0;
  for (Word v = 0; v < g.num_nodes(); ++v) {
    const auto r = bfs(g, v);
    EXPECT_EQ(r.reached(), g.num_nodes());
    max_ecc = std::max(max_ecc, r.eccentricity());
  }
  EXPECT_EQ(max_ecc, 5u);
}

TEST(DeBruijn, LineGraphIdentity) {
  // B(d,n) is the line graph of B(d,n-1) under the labeling that sends the
  // edge x1...x(n-1) -> x2...xn to the node x1...xn (Section 2.5).
  for (Digit d : {2u, 3u}) {
    const DeBruijnDigraph small(d, 2);
    const DeBruijnDigraph big(d, 3);
    const Digraph m = small.materialize();
    const Digraph l = line_graph(m);
    ASSERT_EQ(l.num_nodes(), big.num_nodes());
    // CSR edge k of materialize() is (v, shift_append(v, a)) in order; its
    // word is edge_word(v, a).
    const auto el = m.edge_list();
    std::vector<Word> edge_to_word(el.size());
    for (std::uint64_t k = 0; k < el.size(); ++k) {
      edge_to_word[k] = small.words().edge_word(
          el[k].first, small.words().tail(el[k].second));
    }
    std::set<std::pair<Word, Word>> line_edges;
    for (std::uint64_t k = 0; k < l.num_nodes(); ++k) {
      for (NodeId j : l.successors(k)) {
        line_edges.insert({edge_to_word[k], edge_to_word[j]});
      }
    }
    std::set<std::pair<Word, Word>> debruijn_edges;
    for (Word v = 0; v < big.num_nodes(); ++v) {
      for (Word w : big.successors(v)) debruijn_edges.insert({v, w});
    }
    EXPECT_EQ(line_edges, debruijn_edges) << "d=" << d;
  }
}

TEST(UndirectedDeBruijnTest, DegreeCensusPR82) {
  // [PR82]: d nodes of degree 2d-2, d(d-1) of degree 2d-1, d^n - d^2 of 2d.
  for (Digit d : {2u, 3u, 4u}) {
    const UndirectedDeBruijn g(d, 4);
    std::map<unsigned, std::uint64_t> census;
    for (Word v = 0; v < g.num_nodes(); ++v) ++census[g.degree(v)];
    EXPECT_EQ(census[2 * d - 2], d) << "d=" << d;
    EXPECT_EQ(census[2 * d - 1], static_cast<std::uint64_t>(d) * (d - 1)) << "d=" << d;
    EXPECT_EQ(census[2 * d], g.num_nodes() - static_cast<std::uint64_t>(d) * d)
        << "d=" << d;
  }
}

TEST(UndirectedDeBruijnTest, EdgeCountChapter2Comparison) {
  // Chapter 2 intro: the 4096-node De Bruijn graph has 16,384 edges (vs
  // 24,576 for the like-sized hypercube). The quoted figure is the directed
  // count d^(n+1); the undirected UB count drops the 4 loops and merges the
  // d(d-1)/2 = 6 antiparallel pairs between alternating nodes.
  const DeBruijnDigraph dg(4, 6);
  EXPECT_EQ(dg.num_edges(), 16384u);
  const UndirectedDeBruijn g(4, 6);
  EXPECT_EQ(g.num_edges(), 16374u);
}

TEST(UndirectedDeBruijnTest, NeighborsSymmetric) {
  const UndirectedDeBruijn g(3, 3);
  for (Word v = 0; v < g.num_nodes(); ++v) {
    for (Word w : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(v, w));
      const auto back = g.neighbors(w);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
      EXPECT_NE(v, w);
    }
  }
}

TEST(Necklaces, PaperExample) {
  // N(1120) = [0112] = (1120, 1201, 2011, 0112) -- as a set; cycle order
  // starts from the representative 0112.
  const WordSpace ws(3, 4);
  const Word x = ws.from_digits(std::vector<Digit>{1, 1, 2, 0});
  const auto nodes = necklace_nodes(ws, x);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0], ws.from_digits(std::vector<Digit>{0, 1, 1, 2}));
  EXPECT_EQ(nodes[1], ws.from_digits(std::vector<Digit>{1, 1, 2, 0}));
  EXPECT_EQ(nodes[2], ws.from_digits(std::vector<Digit>{1, 2, 0, 1}));
  EXPECT_EQ(nodes[3], ws.from_digits(std::vector<Digit>{2, 0, 1, 1}));
}

TEST(Necklaces, PartitionNodes) {
  // Necklaces partition B(d,n): disjoint, covering, lengths divide n.
  const WordSpace ws(3, 4);
  const auto necklaces = all_necklaces(ws);
  std::set<Word> seen;
  for (const auto& nk : necklaces) {
    EXPECT_EQ(4 % nk.length, 0u);
    const auto nodes = necklace_nodes(ws, nk.rep);
    EXPECT_EQ(nodes.size(), nk.length);
    for (Word v : nodes) {
      EXPECT_TRUE(seen.insert(v).second) << "node in two necklaces";
    }
  }
  EXPECT_EQ(seen.size(), ws.size());
  // Count matches the Chapter 4 formula.
  EXPECT_EQ(necklaces.size(), necklace::necklaces_total(3, 4));
}

TEST(Necklaces, NecklaceIsCycleInDeBruijn) {
  const WordSpace ws(4, 3);
  const DeBruijnDigraph g(4, 3);
  for (const auto& nk : all_necklaces(ws)) {
    const auto nodes = necklace_nodes(ws, nk.rep);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_TRUE(g.has_edge(nodes[i], nodes[(i + 1) % nodes.size()]));
    }
  }
}

TEST(Necklaces, SuccessorIsRotation) {
  const WordSpace ws(3, 3);
  const Word x = ws.from_digits(std::vector<Digit>{0, 2, 0});
  EXPECT_EQ(necklace_successor(ws, x), ws.from_digits(std::vector<Digit>{2, 0, 0}));
}

TEST(Necklaces, RepsOfFaultSet) {
  // Example 2.1 fault set {020, 112} in B(3,3).
  const WordSpace ws(3, 3);
  const Word f1 = ws.from_digits(std::vector<Digit>{0, 2, 0});
  const Word f2 = ws.from_digits(std::vector<Digit>{1, 1, 2});
  const auto reps = necklace_reps_of(ws, std::vector<Word>{f1, f2});
  ASSERT_EQ(reps.size(), 2u);
  EXPECT_EQ(reps[0], ws.from_digits(std::vector<Digit>{0, 0, 2}));
  EXPECT_EQ(reps[1], ws.from_digits(std::vector<Digit>{1, 1, 2}));
  EXPECT_EQ(necklace_node_count(ws, reps), 6u);  // both necklaces have length 3
}

TEST(Necklaces, DuplicateFaultsDeduplicated) {
  const WordSpace ws(2, 4);
  const Word a = ws.from_digits(std::vector<Digit>{0, 1, 0, 1});
  const Word b = ws.from_digits(std::vector<Digit>{1, 0, 1, 0});  // same necklace
  const auto reps = necklace_reps_of(ws, std::vector<Word>{a, b});
  EXPECT_EQ(reps.size(), 1u);
  EXPECT_EQ(necklace_node_count(ws, reps), 2u);
}

TEST(Cycles, SymbolCycleExample) {
  // Section 3.1: [0,1,2,1,2] denotes the 5-cycle (012, 121, 212, 120, 201).
  const WordSpace ws(3, 3);
  const SymbolCycle c{{0, 1, 2, 1, 2}};
  const NodeCycle nodes = to_node_cycle(ws, c);
  ASSERT_EQ(nodes.length(), 5u);
  EXPECT_EQ(nodes.nodes[0], ws.from_digits(std::vector<Digit>{0, 1, 2}));
  EXPECT_EQ(nodes.nodes[1], ws.from_digits(std::vector<Digit>{1, 2, 1}));
  EXPECT_EQ(nodes.nodes[2], ws.from_digits(std::vector<Digit>{2, 1, 2}));
  EXPECT_EQ(nodes.nodes[3], ws.from_digits(std::vector<Digit>{1, 2, 0}));
  EXPECT_EQ(nodes.nodes[4], ws.from_digits(std::vector<Digit>{2, 0, 1}));
  EXPECT_TRUE(is_cycle(ws, c));
  EXPECT_TRUE(is_cycle(ws, nodes));
  EXPECT_EQ(to_symbol_cycle(ws, nodes), c);
}

TEST(Cycles, ShortCycleWrapsWindows) {
  // [0,1] in B(2,3) is the 2-cycle (010, 101).
  const WordSpace ws(2, 3);
  const SymbolCycle c{{0, 1}};
  const NodeCycle nodes = to_node_cycle(ws, c);
  ASSERT_EQ(nodes.length(), 2u);
  EXPECT_EQ(nodes.nodes[0], ws.from_digits(std::vector<Digit>{0, 1, 0}));
  EXPECT_EQ(nodes.nodes[1], ws.from_digits(std::vector<Digit>{1, 0, 1}));
  EXPECT_TRUE(is_cycle(ws, c));
}

TEST(Cycles, RepeatedWindowIsNotACycle) {
  const WordSpace ws(2, 2);
  // [0,1,0,1] repeats windows 01 and 10.
  EXPECT_FALSE(is_cycle(ws, SymbolCycle{{0, 1, 0, 1}}));
  EXPECT_TRUE(is_cycle(ws, SymbolCycle{{0, 1}}));
}

TEST(Cycles, EdgeWords) {
  const WordSpace ws(2, 2);
  const SymbolCycle c{{0, 0, 1, 1}};  // Hamiltonian in B(2,2)
  EXPECT_TRUE(is_hamiltonian(ws, c));
  const auto ew = edge_words(ws, c);
  // Windows of length 3: 001, 011, 110, 100.
  std::vector<Word> expect{1, 3, 6, 4};
  EXPECT_EQ(ew, expect);
}

TEST(Cycles, EdgeDisjointness) {
  const WordSpace ws(2, 2);
  const SymbolCycle a{{0, 0, 1, 1}};
  const SymbolCycle b{{0, 1}};  // edges 010, 101
  EXPECT_TRUE(edges_disjoint(ws, a, b));
  EXPECT_FALSE(edges_disjoint(ws, a, a));
}

TEST(Cycles, AvoidsEdges) {
  const WordSpace ws(2, 2);
  const SymbolCycle a{{0, 0, 1, 1}};
  EXPECT_TRUE(avoids_edges(ws, a, std::vector<Word>{2}));   // 010 unused
  EXPECT_FALSE(avoids_edges(ws, a, std::vector<Word>{1}));  // 001 used
}

TEST(Cycles, CanonicalRotation) {
  const WordSpace ws(3, 3);
  NodeCycle c{{ws.from_digits(std::vector<Digit>{1, 2, 0}),
               ws.from_digits(std::vector<Digit>{2, 0, 1}),
               ws.from_digits(std::vector<Digit>{0, 1, 2}),
               ws.from_digits(std::vector<Digit>{1, 2, 1}),
               ws.from_digits(std::vector<Digit>{2, 1, 2})}};
  const NodeCycle canon = canonical_rotation(ws, c);
  EXPECT_EQ(canon.nodes[0], ws.from_digits(std::vector<Digit>{0, 1, 2}));
  EXPECT_EQ(canon.length(), 5u);
  EXPECT_TRUE(is_cycle(ws, canon));
}

TEST(Cycles, EulerianHamiltonianBridge) {
  // An Eulerian circuit of B(2,3) yields a De Bruijn sequence = Hamiltonian
  // cycle of B(2,4) (line-graph identity, Section 2.5).
  const DeBruijnDigraph small(2, 3);
  const Digraph m = small.materialize();
  const auto circuit = eulerian_circuit(m);
  ASSERT_EQ(circuit.size(), 16u);
  SymbolCycle seq;
  for (NodeId v : circuit) seq.symbols.push_back(small.words().head(v));
  const WordSpace big(2, 4);
  EXPECT_TRUE(is_hamiltonian(big, seq));
}

}  // namespace
}  // namespace dbr
