#include "util/word.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dbr {
namespace {

TEST(WordSpace, ConstructionValidation) {
  EXPECT_THROW(WordSpace(1, 3), precondition_error);
  EXPECT_THROW(WordSpace(0, 3), precondition_error);
  EXPECT_THROW(WordSpace(2, 0), precondition_error);
  EXPECT_THROW(WordSpace(2, 64), precondition_error);  // 2^65 edge words overflow
  EXPECT_NO_THROW(WordSpace(2, 10));
  EXPECT_NO_THROW(WordSpace(4, 5));
}

TEST(WordSpace, SizeAndRadix) {
  const WordSpace ws(3, 4);
  EXPECT_EQ(ws.radix(), 3u);
  EXPECT_EQ(ws.length(), 4u);
  EXPECT_EQ(ws.size(), 81u);
  EXPECT_EQ(ws.edge_word_count(), 243u);
}

TEST(WordSpace, DigitRoundTrip) {
  const WordSpace ws(3, 4);
  // 1120 in base 3 = 1*27 + 1*9 + 2*3 + 0 = 42.
  const Word x = 42;
  EXPECT_EQ(ws.digit(x, 0), 1u);
  EXPECT_EQ(ws.digit(x, 1), 1u);
  EXPECT_EQ(ws.digit(x, 2), 2u);
  EXPECT_EQ(ws.digit(x, 3), 0u);
  const std::vector<Digit> d{1, 1, 2, 0};
  EXPECT_EQ(ws.from_digits(d), x);
  EXPECT_EQ(ws.digits(x), d);
  EXPECT_EQ(ws.to_string(x), "1120");
}

TEST(WordSpace, WithDigit) {
  const WordSpace ws(5, 3);
  const Word x = ws.from_digits(std::vector<Digit>{4, 0, 2});
  EXPECT_EQ(ws.with_digit(x, 0, 1), ws.from_digits(std::vector<Digit>{1, 0, 2}));
  EXPECT_EQ(ws.with_digit(x, 1, 3), ws.from_digits(std::vector<Digit>{4, 3, 2}));
  EXPECT_EQ(ws.with_digit(x, 2, 0), ws.from_digits(std::vector<Digit>{4, 0, 0}));
  EXPECT_EQ(ws.with_digit(x, 2, 2), x);
}

TEST(WordSpace, RotationMatchesPaperExample) {
  // Section 3.4: pi^3(1202) = pi^{-1}(1202) = 2120.
  const WordSpace ws(3, 4);
  const Word x = ws.from_digits(std::vector<Digit>{1, 2, 0, 2});
  EXPECT_EQ(ws.rotate_left(x, 3), ws.from_digits(std::vector<Digit>{2, 1, 2, 0}));
  EXPECT_EQ(ws.rotate_left(x, 0), x);
  EXPECT_EQ(ws.rotate_left(x, 4), x);
}

TEST(WordSpace, RotationGroupProperties) {
  const WordSpace ws(4, 6);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Word x = rng.below(ws.size());
    const unsigned i = static_cast<unsigned>(rng.below(10));
    const unsigned j = static_cast<unsigned>(rng.below(10));
    EXPECT_EQ(ws.rotate_left(ws.rotate_left(x, i), j), ws.rotate_left(x, i + j));
    EXPECT_EQ(ws.rotate_left(x, 6), x);
  }
}

TEST(WordSpace, MinRotationAndNecklaceExample) {
  // Section 2.1: N(1120) = [0112] = (1120, 1201, 2011, 0112).
  const WordSpace ws(3, 4);
  const Word x = ws.from_digits(std::vector<Digit>{1, 1, 2, 0});
  EXPECT_EQ(ws.min_rotation(x), ws.from_digits(std::vector<Digit>{0, 1, 1, 2}));
  EXPECT_EQ(ws.period(x), 4u);
  EXPECT_TRUE(ws.aperiodic(x));
}

TEST(WordSpace, PeriodDividesN) {
  const WordSpace ws(2, 12);
  for (Word x = 0; x < ws.size(); x += 17) {
    EXPECT_EQ(12 % ws.period(x), 0u) << "period must divide n";
  }
  EXPECT_EQ(ws.period(0), 1u);
  EXPECT_EQ(ws.period(ws.size() - 1), 1u);
  // 0101...01 has period 2.
  EXPECT_EQ(ws.period(ws.alternating(0, 1)), 2u);
}

TEST(WordSpace, WeightsMatchPaperExample) {
  // Section 2.1: x = 1120 has wt 4, wt0 = 1, wt1 = 2, wt2 = 1.
  const WordSpace ws(3, 4);
  const Word x = ws.from_digits(std::vector<Digit>{1, 1, 2, 0});
  EXPECT_EQ(ws.weight(x), 4u);
  EXPECT_EQ(ws.count_digit(x, 0), 1u);
  EXPECT_EQ(ws.count_digit(x, 1), 2u);
  EXPECT_EQ(ws.count_digit(x, 2), 1u);
}

TEST(WordSpace, WeightInvariantUnderRotation) {
  const WordSpace ws(3, 5);
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const Word x = rng.below(ws.size());
    const Word y = ws.rotate_left(x, 1 + static_cast<unsigned>(rng.below(4)));
    EXPECT_EQ(ws.weight(x), ws.weight(y));
    for (Digit a = 0; a < 3; ++a) {
      EXPECT_EQ(ws.count_digit(x, a), ws.count_digit(y, a));
    }
  }
}

TEST(WordSpace, ShiftOperations) {
  const WordSpace ws(3, 3);
  const Word x = ws.from_digits(std::vector<Digit>{0, 2, 0});
  EXPECT_EQ(ws.shift_append(x, 1), ws.from_digits(std::vector<Digit>{2, 0, 1}));
  EXPECT_EQ(ws.shift_prepend(x, 1), ws.from_digits(std::vector<Digit>{1, 0, 2}));
  EXPECT_EQ(ws.head(x), 0u);
  EXPECT_EQ(ws.tail(x), 0u);
  EXPECT_EQ(ws.prefix(x), 2u);  // "02" base 3 = 2
  EXPECT_EQ(ws.suffix(x), 6u);  // "20" base 3 = 6
}

TEST(WordSpace, ShiftInverses) {
  const WordSpace ws(5, 4);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Word x = rng.below(ws.size());
    const Digit a = static_cast<Digit>(rng.below(5));
    // shift_prepend undoes shift_append when fed the dropped digit.
    EXPECT_EQ(ws.shift_prepend(ws.shift_append(x, a), ws.head(x)), x);
    EXPECT_EQ(ws.shift_append(ws.shift_prepend(x, a), ws.tail(x)), x);
  }
}

TEST(WordSpace, ComposeAccessors) {
  const WordSpace ws(4, 5);
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const Word x = rng.below(ws.size());
    EXPECT_EQ(ws.compose_prefix(ws.head(x), ws.suffix(x)), x);
    EXPECT_EQ(ws.compose_suffix(ws.prefix(x), ws.tail(x)), x);
  }
}

TEST(WordSpace, RepeatedAndAlternating) {
  const WordSpace ws(3, 5);
  EXPECT_EQ(ws.to_string(ws.repeated(2)), "22222");
  EXPECT_EQ(ws.to_string(ws.alternating(1, 2)), "12121");  // odd n ends with first
  const WordSpace even(3, 4);
  EXPECT_EQ(even.to_string(even.alternating(1, 2)), "1212");
}

TEST(WordSpace, EdgeWordCodec) {
  const WordSpace ws(3, 3);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const Word u = rng.below(ws.size());
    const Digit a = static_cast<Digit>(rng.below(3));
    const Word e = ws.edge_word(u, a);
    const auto [tail, head] = ws.edge_endpoints(e);
    EXPECT_EQ(tail, u);
    EXPECT_EQ(head, ws.shift_append(u, a));
  }
}

TEST(WordSpace, WideRadixToString) {
  const WordSpace ws(13, 2);
  const Word x = ws.from_digits(std::vector<Digit>{12, 7});
  EXPECT_EQ(ws.to_string(x), "12.7");
}

TEST(WordSpace, PreconditionChecks) {
  const WordSpace ws(3, 3);
  EXPECT_THROW(ws.digit(0, 3), precondition_error);
  EXPECT_THROW(ws.shift_append(0, 3), precondition_error);
  EXPECT_THROW(ws.with_digit(0, 0, 5), precondition_error);
  EXPECT_THROW((void)ws.from_digits(std::vector<Digit>{1, 2}), precondition_error);
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(99);
  const auto sample = rng.sample_distinct(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::vector<std::uint64_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleDistinctFullPopulation) {
  Rng rng(1);
  auto sample = rng.sample_distinct(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_THROW(rng.below(0), precondition_error);
}

}  // namespace
}  // namespace dbr
