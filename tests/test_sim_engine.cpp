#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace dbr::sim {
namespace {

// Fully connected topology helper.
Engine full_mesh(NodeId n) {
  return Engine(n, [](NodeId, NodeId) { return true; });
}

TEST(Engine, DeliversNextRound) {
  Engine e = full_mesh(3);
  e.post(0, 1, {0, 7, {42}});
  EXPECT_FALSE(e.idle());
  std::vector<std::pair<NodeId, std::uint64_t>> got;
  e.step([&](NodeId dest, std::vector<Message>& batch) {
    for (const Message& m : batch) got.emplace_back(dest, m.payload[0]);
  });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::pair<NodeId, std::uint64_t>{1, 42}));
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.rounds(), 1u);
  EXPECT_EQ(e.messages_delivered(), 1u);
}

TEST(Engine, BatchesByDestination) {
  Engine e = full_mesh(4);
  e.post(0, 3, {0, 1, {}});
  e.post(1, 3, {0, 1, {}});
  e.post(2, 1, {0, 1, {}});
  int calls = 0;
  e.step([&](NodeId dest, std::vector<Message>& batch) {
    ++calls;
    if (dest == 3) {
      EXPECT_EQ(batch.size(), 2u);
    }
    if (dest == 1) {
      EXPECT_EQ(batch.size(), 1u);
    }
  });
  EXPECT_EQ(calls, 2);
}

TEST(Engine, SenderIdStamped) {
  Engine e = full_mesh(2);
  e.post(1, 0, {99, 1, {}});  // bogus from-field is overwritten
  e.step([&](NodeId, std::vector<Message>& batch) {
    EXPECT_EQ(batch[0].from, 1u);
  });
}

TEST(Engine, DeadNodesDropTraffic) {
  Engine e = full_mesh(3);
  e.kill(1);
  EXPECT_FALSE(e.alive(1));
  e.post(0, 1, {0, 1, {}});  // to dead
  e.post(1, 2, {0, 1, {}});  // from dead
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.messages_dropped(), 2u);
  int calls = 0;
  e.step([&](NodeId, std::vector<Message>&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Engine, RevivedNodesRejoinTraffic) {
  Engine e = full_mesh(3);
  e.kill(1);
  e.post(0, 1, {0, 1, {}});  // dropped while dead
  EXPECT_EQ(e.messages_dropped(), 1u);
  e.revive(1);
  EXPECT_TRUE(e.alive(1));
  e.post(0, 1, {0, 1, {}});
  e.post(1, 2, {0, 1, {}});
  int calls = 0;
  e.step([&](NodeId, std::vector<Message>&) { ++calls; });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(e.messages_delivered(), 2u);
  EXPECT_EQ(e.messages_dropped(), 1u);
  EXPECT_THROW(e.revive(3), precondition_error);
}

TEST(Engine, TopologyEnforced) {
  Engine e(4, [](NodeId u, NodeId v) { return v == (u + 1) % 4; });
  EXPECT_NO_THROW(e.post(0, 1, {0, 1, {}}));
  EXPECT_THROW(e.post(0, 2, {0, 1, {}}), precondition_error);
}

TEST(Engine, PostsDuringDeliveryArriveNextRound) {
  // Relay 0 -> 1 -> 2 takes two rounds.
  Engine e(3, [](NodeId u, NodeId v) { return v == u + 1; });
  e.post(0, 1, {0, 5, {1}});
  bool reached2 = false;
  auto handler = [&](NodeId dest, std::vector<Message>& batch) {
    if (dest == 1) e.post(1, 2, std::move(batch[0]));
    if (dest == 2) reached2 = true;
  };
  e.step(handler);
  EXPECT_FALSE(reached2);
  e.step(handler);
  EXPECT_TRUE(reached2);
  EXPECT_EQ(e.rounds(), 2u);
}

TEST(Engine, RunUntilIdleCountsRounds) {
  Engine e(5, [](NodeId u, NodeId v) { return v == u + 1; });
  e.post(0, 1, {0, 5, {}});
  const auto rounds = e.run_until_idle(
      [&](NodeId dest, std::vector<Message>& batch) {
        if (dest + 1 < 5) e.post(dest, dest + 1, std::move(batch[0]));
      },
      100);
  EXPECT_EQ(rounds, 4u);
}

TEST(Engine, RunUntilIdleThrowsOnBudgetExhaustion) {
  // Two nodes bouncing a message forever.
  Engine e = full_mesh(2);
  e.post(0, 1, {0, 1, {}});
  EXPECT_THROW(e.run_until_idle(
                   [&](NodeId dest, std::vector<Message>& batch) {
                     e.post(dest, 1 - dest, std::move(batch[0]));
                   },
                   10),
               invariant_error);
}

// --- Queued-message semantics across cut_link / restore_link / revive ---
// The engine's fault model checks only at post time: whatever reached the
// outbox drains at step() even if the link or receiver fails afterwards.
// These pin the drain-vs-drop boundary the traffic layer builds on.

TEST(Engine, QueuedMessagesDrainAcrossLaterLinkCut) {
  Engine e = full_mesh(3);
  e.post(0, 1, {0, 1, {7}});
  e.cut_link(0, 1);  // cut lands after the post
  int calls = 0;
  e.step([&](NodeId dest, std::vector<Message>& batch) {
    ++calls;
    EXPECT_EQ(dest, 1u);
    EXPECT_EQ(batch[0].payload[0], 7u);
  });
  EXPECT_EQ(calls, 1);  // drained, not dropped
  EXPECT_EQ(e.messages_delivered(), 1u);
  EXPECT_EQ(e.messages_dropped(), 0u);
  // The same post after the cut is dropped at post time.
  e.post(0, 1, {0, 1, {8}});
  EXPECT_TRUE(e.idle());
  EXPECT_EQ(e.messages_dropped(), 1u);
}

TEST(Engine, QueuedMessagesDrainToReceiverKilledAfterPost) {
  Engine e = full_mesh(3);
  e.post(0, 1, {0, 1, {9}});
  e.kill(1);  // receiver dies with the message already on the wire
  int calls = 0;
  e.step([&](NodeId dest, std::vector<Message>&) {
    ++calls;
    EXPECT_EQ(dest, 1u);
    EXPECT_FALSE(e.alive(dest));  // the handler sees the dead destination
  });
  EXPECT_EQ(calls, 1);  // the engine drains; dropping is the protocol's call
  EXPECT_EQ(e.messages_delivered(), 1u);
  EXPECT_EQ(e.messages_dropped(), 0u);
}

TEST(Engine, RestoreLinkOnlyAffectsLaterPosts) {
  Engine e = full_mesh(2);
  e.cut_link(0, 1);
  e.post(0, 1, {0, 1, {}});  // dropped: posted while cut
  EXPECT_EQ(e.messages_dropped(), 1u);
  e.restore_link(0, 1);
  EXPECT_TRUE(e.idle());  // the dropped message did not come back
  e.post(0, 1, {0, 1, {}});
  int calls = 0;
  e.step([&](NodeId, std::vector<Message>&) { ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(e.messages_dropped(), 1u);
  // Restoring an intact link is a no-op.
  EXPECT_NO_THROW(e.restore_link(0, 1));
}

TEST(Engine, ReviveDoesNotResurrectDroppedTraffic) {
  Engine e = full_mesh(2);
  e.kill(1);
  e.post(0, 1, {0, 1, {}});  // dropped at post time
  e.revive(1);
  EXPECT_TRUE(e.idle());  // nothing queued for the revived node
  int calls = 0;
  e.step([&](NodeId, std::vector<Message>&) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(e.messages_delivered(), 0u);
  EXPECT_EQ(e.messages_dropped(), 1u);
}

TEST(Engine, CutRestoreRoundTripDropsOnlyWhileCut) {
  Engine e = full_mesh(2);
  e.post(0, 1, {0, 1, {1}});
  e.cut_link(0, 1);
  e.post(0, 1, {0, 1, {2}});  // dropped
  e.restore_link(0, 1);
  e.post(0, 1, {0, 1, {3}});
  std::vector<std::uint64_t> got;
  e.step([&](NodeId, std::vector<Message>& batch) {
    for (const Message& m : batch) got.push_back(m.payload[0]);
  });
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(e.messages_dropped(), 1u);
  // Cutting a link twice is a no-op; cutting a non-link throws.
  e.cut_link(0, 1);
  EXPECT_NO_THROW(e.cut_link(0, 1));
  Engine chain(3, [](NodeId u, NodeId v) { return v == u + 1; });
  EXPECT_THROW(chain.cut_link(0, 2), precondition_error);
}

TEST(Engine, Preconditions) {
  EXPECT_THROW(Engine(0, [](NodeId, NodeId) { return true; }), precondition_error);
  Engine e = full_mesh(2);
  EXPECT_THROW(e.post(0, 5, {0, 1, {}}), precondition_error);
  EXPECT_THROW(e.kill(9), precondition_error);
}

}  // namespace
}  // namespace dbr::sim
